"""Table 2 — freshness of the collection for the four design-choice combinations.

The paper's setting: every page changes with a four-month mean interval, the
crawler revisits every page once a month, and the batch-mode crawler does
all its crawling in the first week of the month. Paper values:

    steady / in-place   0.88        batch / in-place   0.88
    steady / shadowing  0.77        batch / shadowing  0.86

plus the sensitivity example (pages change monthly, two-week batch crawl):
in-place 0.63 vs shadowing 0.50.

The benchmark reports both the closed-form values and a Monte-Carlo
simulation of the same policies.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.freshness.analytic import time_averaged_freshness
from repro.simulation.crawler_sim import simulate_crawl_policy
from repro.simulation.scenarios import (
    PAPER_SENSITIVITY_FRESHNESS,
    PAPER_TABLE2_FRESHNESS,
    paper_table2_policies,
    sensitivity_example_policies,
    sensitivity_scenario_rate,
    table2_scenario_rate,
)


def test_table2_policy_freshness(benchmark):
    """Table 2: freshness for steady/batch x in-place/shadowing."""
    rate = table2_scenario_rate()
    policies = paper_table2_policies()

    def run():
        analytic = {
            name: time_averaged_freshness(policy, rate)
            for name, policy in policies.items()
        }
        simulated = {
            name: simulate_crawl_policy([rate] * 500, policy, n_cycles=8, seed=21)
            for name, policy in policies.items()
        }
        return analytic, simulated

    analytic, simulated = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (
            name,
            f"{PAPER_TABLE2_FRESHNESS[name]:.2f}",
            f"{analytic[name]:.3f}",
            f"{simulated[name].mean_freshness:.3f}",
        )
        for name in policies
    ]
    print()
    print(format_table(
        ["policy", "paper (Table 2)", "analytic", "simulated"], rows,
        title="Table 2: expected freshness of the current collection",
    ))

    for name in policies:
        assert analytic[name] == abs(analytic[name])
        assert abs(analytic[name] - PAPER_TABLE2_FRESHNESS[name]) < 0.02
        assert abs(simulated[name].mean_freshness - analytic[name]) < 0.04
    # Orderings the paper draws conclusions from.
    assert analytic["steady / in-place"] == analytic["batch / in-place"]
    assert analytic["steady / shadowing"] < analytic["batch / shadowing"]


def test_table2_sensitivity_example(benchmark):
    """Section 4 sensitivity example: monthly changes, two-week batch crawl."""
    rate = sensitivity_scenario_rate()
    policies = sensitivity_example_policies()

    def run():
        return {
            name: time_averaged_freshness(policy, rate)
            for name, policy in policies.items()
        }

    analytic = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (name, f"{PAPER_SENSITIVITY_FRESHNESS[name]:.2f}", f"{analytic[name]:.3f}")
        for name in policies
    ]
    print()
    print(format_table(
        ["policy", "paper", "analytic"], rows,
        title="Section 4 sensitivity example (dynamic pages favour in-place updates)",
    ))
    for name in policies:
        assert abs(analytic[name] - PAPER_SENSITIVITY_FRESHNESS[name]) < 0.01
    assert analytic["batch / in-place"] > analytic["batch / shadowing"]
