"""Table 2 — freshness of the collection for the four design-choice combinations.

The paper's setting: every page changes with a four-month mean interval, the
crawler revisits every page once a month, and the batch-mode crawler does
all its crawling in the first week of the month. Paper values:

    steady / in-place   0.88        batch / in-place   0.88
    steady / shadowing  0.77        batch / shadowing  0.86

plus the sensitivity example (pages change monthly, two-week batch crawl):
in-place 0.63 vs shadowing 0.50.

Both experiments run through the declarative API: the ``"table2"`` and
``"sensitivity"`` scenario registry entries report the closed-form values
and (for Table 2) a Monte-Carlo simulation of the same policies via the
vectorized kernels.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.api import ExperimentSpec, run


def test_table2_policy_freshness(benchmark):
    """Table 2: freshness for steady/batch x in-place/shadowing."""
    spec = ExperimentSpec(name="bench/table2", kind="scenario", scenario="table2")

    def run_spec():
        return run(spec)

    result = benchmark.pedantic(run_spec, rounds=1, iterations=1)
    paper = result.tables["paper"]
    analytic = result.tables["analytic"]
    simulated = result.tables["simulated"]
    rows = [
        (
            name,
            f"{paper[name]:.2f}",
            f"{analytic[name]:.3f}",
            f"{simulated[name]:.3f}",
        )
        for name in paper
    ]
    print()
    print(format_table(
        ["policy", "paper (Table 2)", "analytic", "simulated"], rows,
        title="Table 2: expected freshness of the current collection "
              f"(spec {result.spec_hash[:12]})",
    ))

    for name in paper:
        assert analytic[name] == abs(analytic[name])
        assert abs(analytic[name] - paper[name]) < 0.02
        assert abs(simulated[name] - analytic[name]) < 0.04
    # Orderings the paper draws conclusions from.
    assert analytic["steady / in-place"] == analytic["batch / in-place"]
    assert analytic["steady / shadowing"] < analytic["batch / shadowing"]


def test_table2_sensitivity_example(benchmark):
    """Section 4 sensitivity example: monthly changes, two-week batch crawl."""
    spec = ExperimentSpec(
        name="bench/sensitivity", kind="scenario", scenario="sensitivity"
    )

    def run_spec():
        return run(spec)

    result = benchmark.pedantic(run_spec, rounds=1, iterations=1)
    paper = result.tables["paper"]
    analytic = result.tables["analytic"]
    rows = [
        (name, f"{paper[name]:.2f}", f"{analytic[name]:.3f}") for name in paper
    ]
    print()
    print(format_table(
        ["policy", "paper", "analytic"], rows,
        title="Section 4 sensitivity example (dynamic pages favour in-place updates)",
    ))
    for name in paper:
        assert abs(analytic[name] - paper[name]) < 0.01
    assert analytic["batch / in-place"] > analytic["batch / shadowing"]
