"""Figure 4 — visible lifespan of pages (Methods 1 and 2).

Paper findings being reproduced:
* Methods 1 and 2 agree for short-lived pages and diverge for long-lived
  ones (those are the censored spans that Method 2 doubles);
* more than 70% of pages stay in the window for more than a month;
* com pages are the shortest lived, edu and gov pages the longest.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.experiment.lifespan_analysis import (
    PAPER_FIGURE4_METHOD1,
    analyze_lifespans,
)


def test_fig4a_lifespan_methods(benchmark, bench_observation_log):
    """Figure 4(a): lifespan histogram, Method 1 vs Method 2."""
    analysis = benchmark.pedantic(
        lambda: analyze_lifespans(bench_observation_log), rounds=1, iterations=1
    )
    method1 = analysis.method1_overall.labelled_fractions()
    method2 = analysis.method2_overall.labelled_fractions()
    rows = [
        (label, f"{PAPER_FIGURE4_METHOD1[label]:.2f}",
         f"{method1[label]:.2f}", f"{method2[label]:.2f}")
        for label in method1
    ]
    print()
    print(format_table(
        ["lifespan bucket", "paper M1 (Fig 4a)", "measured M1", "measured M2"],
        rows,
        title="Figure 4(a): visible lifespan of pages",
    ))
    print(f"censored fraction: {analysis.censored_fraction:.2f}")

    longer_than_month = method1[">1month,<=4months"] + method1[">4months"]
    assert longer_than_month > 0.5, "most pages live for more than a month"
    assert method2[">4months"] >= method1[">4months"]


def test_fig4b_lifespan_by_domain(benchmark, bench_observation_log):
    """Figure 4(b): per-domain lifespans (com shortest, edu/gov longest)."""
    analysis = benchmark.pedantic(
        lambda: analyze_lifespans(bench_observation_log), rounds=1, iterations=1
    )
    rows = []
    for domain in ("com", "netorg", "edu", "gov"):
        fractions = analysis.method1_by_domain[domain].labelled_fractions()
        rows.append((domain, f"{fractions['>4months']:.2f}"))
    print()
    print(format_table(
        ["domain", "visible > 4 months (Method 1)"], rows,
        title="Figure 4(b): paper reports > 0.50 for edu/gov, com lowest",
    ))
    com = analysis.method1_by_domain["com"].labelled_fractions()[">4months"]
    edu = analysis.method1_by_domain["edu"].labelled_fractions()[">4months"]
    gov = analysis.method1_by_domain["gov"].labelled_fractions()[">4months"]
    assert com < edu and com < gov
