"""Tests for the declarative experiment API (repro.api)."""

import json

import pytest

from repro.api import (
    CHANGE_MODELS,
    ESTIMATORS,
    REVISIT_POLICIES,
    SCENARIOS,
    CrawlerSpec,
    ExperimentSpec,
    PolicySpec,
    Registry,
    ScenarioMatrix,
    UnknownEntryError,
    WebSpec,
    register_scenario,
    run,
    run_matrix,
)

TINY_WEB = WebSpec(site_scale=0.03, pages_per_site=8, horizon_days=30.0, seed=3)
TINY_CRAWL = ExperimentSpec(
    name="tiny-crawl",
    kind="crawl",
    web=TINY_WEB,
    crawler=CrawlerSpec(
        kind="incremental",
        collection_capacity=25,
        crawl_budget_per_day=80.0,
        duration_days=5.0,
        measurement_interval_days=1.0,
    ),
    policy=PolicySpec(revisit_policy="optimal", estimator="ep"),
)


class TestRegistry:
    def test_builtins_are_registered(self):
        assert {"uniform", "proportional", "optimal"} <= set(REVISIT_POLICIES.names())
        assert {"ep", "eb"} <= set(ESTIMATORS.names())
        assert {"poisson", "periodic", "bursty", "never"} <= set(CHANGE_MODELS.names())
        assert {"table2", "sensitivity", "figure7", "figure8",
                "revisit-policies"} <= set(SCENARIOS.names())

    def test_unknown_name_lists_choices(self):
        with pytest.raises(UnknownEntryError) as excinfo:
            REVISIT_POLICIES.get("bogus")
        message = str(excinfo.value)
        assert "'bogus'" in message
        for name in ("uniform", "proportional", "optimal"):
            assert name in message

    def test_unknown_entry_error_is_a_value_error(self):
        assert issubclass(UnknownEntryError, ValueError)

    def test_create_filters_unsupported_kwargs(self):
        # Only the optimal policy understands use_importance; the others
        # must still be constructible through the same call.
        for name in ("uniform", "proportional", "optimal"):
            policy = REVISIT_POLICIES.create(name, use_importance=True)
            assert policy is not None

    def test_custom_registration_and_override(self):
        registry = Registry("widget")

        @registry.register("one")
        def make_one():
            return 1

        assert registry.create("one") == 1
        registry.register("one", lambda: 2)
        assert registry.create("one") == 2
        assert "one" in registry and len(registry) == 1


class TestSpecValidation:
    def test_unknown_revisit_policy(self):
        with pytest.raises(UnknownEntryError, match="optimal"):
            PolicySpec(revisit_policy="bogus")

    def test_unknown_estimator(self):
        with pytest.raises(UnknownEntryError, match="'ep'"):
            PolicySpec(estimator="bogus")

    def test_unknown_change_model(self):
        with pytest.raises(UnknownEntryError, match="poisson"):
            WebSpec(change_model="bogus")

    def test_misspelled_change_model_params_rejected(self):
        with pytest.raises(ValueError, match="phse"):
            WebSpec(change_model="periodic",
                    change_model_params={"interval": 5.0, "phse": 2.0})

    def test_unknown_scenario(self):
        with pytest.raises(UnknownEntryError, match="table2"):
            ExperimentSpec(name="x", kind="scenario", scenario="bogus")

    def test_unknown_experiment_kind(self):
        with pytest.raises(ValueError, match="scenario"):
            ExperimentSpec(name="x", kind="bogus")

    def test_crawl_requires_web_and_crawler(self):
        with pytest.raises(ValueError, match="web"):
            ExperimentSpec(name="x", kind="crawl")
        with pytest.raises(ValueError, match="crawler"):
            ExperimentSpec(name="x", kind="crawl", web=TINY_WEB)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError) as excinfo:
            ExperimentSpec.from_dict({"name": "x", "kind": "crawl", "bogus": 1})
        message = str(excinfo.value)
        assert "bogus" in message and "scenario" in message

    def test_params_must_be_json_serializable(self):
        with pytest.raises(ValueError, match="JSON"):
            ExperimentSpec(name="x", kind="scenario", scenario="table2",
                           params={"f": object()})


class TestSpecRoundTrip:
    def test_dict_round_trip_is_identity(self):
        spec = TINY_CRAWL
        rebuilt = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec
        assert rebuilt.spec_hash() == spec.spec_hash()

    def test_json_round_trip_is_identity(self):
        spec = ExperimentSpec(
            name="scenario", kind="scenario", scenario="table2",
            params={"n_pages": 40, "n_cycles": 2}, seed=5,
        )
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_hash_changes_with_content(self):
        spec = TINY_CRAWL
        assert spec.replace(seed=1).spec_hash() != spec.spec_hash()
        assert spec.replace(web=TINY_WEB.replace(seed=4)).spec_hash() != spec.spec_hash()

    def test_round_tripped_spec_runs_identically(self):
        spec = TINY_CRAWL
        rebuilt = ExperimentSpec.from_dict(spec.to_dict())
        first = run(spec)
        second = run(rebuilt)
        assert first.spec_hash == second.spec_hash
        assert first.summary == second.summary
        assert first.series == second.series


class TestRunner:
    def test_crawl_result_structure_and_provenance(self):
        result = run(TINY_CRAWL)
        assert result.kind == "crawl"
        assert result.seed == TINY_WEB.seed
        assert result.spec_hash == TINY_CRAWL.spec_hash()
        assert result.summary["pages_crawled"] > 0
        assert len(result.series["times"]) == len(result.series["freshness"])
        payload = json.loads(result.to_json())
        assert payload["provenance"]["spec_hash"] == TINY_CRAWL.spec_hash()
        assert payload["provenance"]["seed"] == TINY_WEB.seed
        assert "artifacts" not in payload
        assert {"web", "crawler", "outcome"} <= set(result.artifacts)

    def test_run_level_seed_overrides_web_seed(self):
        seeded = run(TINY_CRAWL.replace(seed=41))
        assert seeded.seed == 41
        baseline = run(TINY_CRAWL)
        assert seeded.summary != baseline.summary or \
            seeded.series != baseline.series

    def test_periodic_crawl(self):
        spec = TINY_CRAWL.replace(
            crawler=TINY_CRAWL.crawler.replace(kind="periodic", cycle_days=2.0),
            policy=None,
        )
        result = run(spec)
        assert result.summary["mode"] == "periodic"
        assert result.summary["cycles_completed"] >= 1

    def test_scenario_run_matches_direct_call(self):
        spec = ExperimentSpec(
            name="t2", kind="scenario", scenario="table2",
            params={"n_pages": 40, "n_cycles": 2, "simulate": True},
        )
        result = run(spec)
        direct = SCENARIOS.get("table2")(n_pages=40, n_cycles=2, simulate=True)
        assert result.tables == {
            key: value for key, value in direct["tables"].items()
        }

    def test_scenario_rejects_unknown_params(self):
        spec = ExperimentSpec(
            name="t2", kind="scenario", scenario="table2", params={"bogus": 1}
        )
        with pytest.raises(ValueError, match="bogus"):
            run(spec)

    def test_monitor_run(self):
        spec = ExperimentSpec(
            name="mon", kind="monitor", web=TINY_WEB, params={"end_day": 15}
        )
        result = run(spec)
        assert result.summary["n_pages"] > 0
        assert set(result.tables["change_interval_fractions"]) > set()
        json.dumps(result.to_dict())

    def test_monitor_rejects_unknown_params(self):
        spec = ExperimentSpec(
            name="mon", kind="monitor", web=TINY_WEB, params={"bogus": 1}
        )
        with pytest.raises(ValueError, match="bogus"):
            run(spec)

    def test_monitor_selection_seed_alone_triggers_selection(self):
        spec = ExperimentSpec(
            name="mon", kind="monitor", web=TINY_WEB,
            params={"end_day": 10, "selection_seed": 3},
        )
        result = run(spec)
        assert result.tables["monitored_sites_per_domain"] is not None

    def test_run_level_seed_skipped_for_seedless_scenarios(self):
        # "sensitivity" takes no seed parameter; a run-level seed must not
        # be forwarded to it.
        result = run(ExperimentSpec(
            name="s", kind="scenario", scenario="sensitivity", seed=3
        ))
        assert result.tables["analytic"]
        assert result.seed == 3

    def test_run_level_seed_forwarded_to_seeded_scenarios(self):
        seeded = run(ExperimentSpec(
            name="t", kind="scenario", scenario="table2",
            params={"n_pages": 40, "n_cycles": 2}, seed=99,
        ))
        direct = SCENARIOS.get("table2")(n_pages=40, n_cycles=2, seed=99)
        assert seeded.tables["simulated"] == direct["tables"]["simulated"]

    def test_custom_policy_works_in_revisit_policies_scenario(self):
        from repro.freshness.policies import UniformRevisitPolicy

        REVISIT_POLICIES.register("test-flat", UniformRevisitPolicy)
        try:
            result = run(ExperimentSpec(
                name="custom", kind="scenario", scenario="revisit-policies",
                params={"policy": ["uniform", "test-flat"], "n_pages": 40,
                        "simulate": False},
            ))
            analytic = result.tables["analytic"]
            assert analytic["test-flat"] == analytic["uniform"]
        finally:
            REVISIT_POLICIES._entries.pop("test-flat", None)

    def test_unknown_policy_in_scenario_lists_choices(self):
        spec = ExperimentSpec(
            name="bad", kind="scenario", scenario="revisit-policies",
            params={"policy": "bogus", "simulate": False},
        )
        with pytest.raises(UnknownEntryError, match="uniform"):
            run(spec)

    def test_change_model_override_builds_clockwork_web(self):
        from repro.api import build_web

        web = build_web(TINY_WEB.replace(
            change_model="periodic", change_model_params={"interval": 5.0}
        ))
        rates = {page.change_process.mean_rate for page in web.pages()}
        assert rates == {1.0 / 5.0}


class TestScenarioMatrix:
    def test_cells_cross_product_and_names(self):
        matrix = ScenarioMatrix(
            base=TINY_CRAWL,
            axes={"seed": [1, 2], "crawler.duration_days": [3.0, 4.0]},
        )
        cells = matrix.cells()
        assert len(cells) == 4
        assignments = [assignment for assignment, _ in cells]
        assert {"seed", "crawler.duration_days"} == set(assignments[0])
        names = {spec.name for _, spec in cells}
        assert len(names) == 4

    def test_invalid_axis_path(self):
        with pytest.raises(ValueError, match="axis"):
            ScenarioMatrix(base=TINY_CRAWL, axes={"nope.field": [1]})

    def test_matrix_shares_webs_and_runs_cells(self):
        matrix = ScenarioMatrix(
            base=TINY_CRAWL,
            axes={"crawler.duration_days": [3.0, 5.0]},
        )
        result = run_matrix(matrix)
        assert len(result.cells) == 2
        # Cells share the web spec and seed, so they crawl the same web.
        assert result.cells[0].artifacts["web"] is result.cells[1].artifacts["web"]
        json.dumps(result.to_dict())

    def test_batched_scenario_axis_single_call(self):
        calls = []

        @register_scenario("test-batch")
        def scenario(value=("a",)):
            values = [value] if isinstance(value, str) else list(value)
            calls.append(values)
            return {
                "summary": {"values": values},
                "cells": [{"summary": {"value": v}} for v in values],
            }

        scenario.batch_param = "value"
        try:
            matrix = ScenarioMatrix(
                base=ExperimentSpec(name="b", kind="scenario", scenario="test-batch"),
                axes={"params.value": ["x", "y", "z"]},
            )
            result = run_matrix(matrix)
        finally:
            SCENARIOS._entries.pop("test-batch", None)
        assert calls == [["x", "y", "z"]]  # one batched call, not three
        assert [cell.summary["value"] for cell in result.cells] == ["x", "y", "z"]

    def test_batched_matrix_matches_per_cell_runs(self):
        base = ExperimentSpec(
            name="sweep", kind="scenario", scenario="revisit-policies",
            params={"n_pages": 60, "simulate": False},
        )
        matrix = ScenarioMatrix(
            base=base, axes={"params.policy": ["uniform", "optimal"]}
        )
        batched = run_matrix(matrix)
        for cell, name in zip(batched.cells, ["uniform", "optimal"]):
            single = run(base.replace(params={**base.params, "policy": name}))
            assert cell.tables["analytic"] == single.tables["analytic"]


class TestRegistryDispatchSites:
    """The former string-literal dispatch sites resolve via the registries."""

    def test_crawler_config_unknown_policy_lists_choices(self):
        from repro.core.incremental_crawler import IncrementalCrawlerConfig

        with pytest.raises(ValueError) as excinfo:
            IncrementalCrawlerConfig(revisit_policy="bogus")
        assert "optimal" in str(excinfo.value)

    def test_update_module_config_unknown_estimator_lists_choices(self):
        from repro.core.update_module import UpdateModuleConfig

        with pytest.raises(ValueError) as excinfo:
            UpdateModuleConfig(estimator="bogus")
        assert "'ep'" in str(excinfo.value)

    def test_custom_revisit_policy_reaches_the_crawler(self):
        from repro.core.incremental_crawler import IncrementalCrawlerConfig
        from repro.freshness.policies import UniformRevisitPolicy

        class EagerPolicy(UniformRevisitPolicy):
            pass

        REVISIT_POLICIES.register("test-eager", EagerPolicy)
        try:
            config = IncrementalCrawlerConfig(revisit_policy="test-eager")
            assert isinstance(config.build_revisit_policy(), EagerPolicy)
        finally:
            REVISIT_POLICIES._entries.pop("test-eager", None)
