"""Tests for the closed-form freshness models (Figures 7-8, Table 2)."""

import math

import pytest

from repro.freshness.analytic import (
    CrawlMode,
    CrawlPolicy,
    UpdateMode,
    batch_inplace_freshness_at,
    batch_shadow_freshness_at,
    expected_age_periodic,
    expected_freshness_periodic,
    expected_freshness_poisson_revisit,
    freshness_at,
    freshness_trajectory,
    population_time_averaged_freshness,
    steady_inplace_freshness_at,
    steady_shadow_freshness_at,
    time_averaged_freshness,
)
from repro.simulation.scenarios import (
    PAPER_SENSITIVITY_FRESHNESS,
    PAPER_TABLE2_FRESHNESS,
    paper_table2_policies,
    sensitivity_example_policies,
    sensitivity_scenario_rate,
    table2_scenario_rate,
)


class TestPerPageFormulas:
    def test_freshness_periodic_basic_value(self):
        # lambda*I = 1 -> F = 1 - e^-1
        assert expected_freshness_periodic(1.0, 1.0) == pytest.approx(1 - math.exp(-1))

    def test_freshness_periodic_never_changing_page(self):
        assert expected_freshness_periodic(0.0, 30.0) == 1.0

    def test_freshness_periodic_never_revisited(self):
        assert expected_freshness_periodic(0.5, float("inf")) == 0.0

    def test_freshness_decreases_with_change_rate(self):
        values = [expected_freshness_periodic(rate, 10.0) for rate in (0.01, 0.1, 1.0)]
        assert values[0] > values[1] > values[2]

    def test_freshness_increases_with_revisit_frequency(self):
        values = [expected_freshness_periodic(0.1, interval) for interval in (1.0, 10.0, 100.0)]
        assert values[0] > values[1] > values[2]

    def test_freshness_bounds(self):
        for rate in (0.0, 0.01, 1.0, 100.0):
            for interval in (0.1, 1.0, 1000.0):
                assert 0.0 <= expected_freshness_periodic(rate, interval) <= 1.0

    def test_age_zero_for_static_page(self):
        assert expected_age_periodic(0.0, 30.0) == 0.0

    def test_age_increases_with_interval(self):
        ages = [expected_age_periodic(0.1, interval) for interval in (1.0, 10.0, 100.0)]
        assert ages[0] < ages[1] < ages[2]

    def test_age_bounded_by_half_interval(self):
        # Age cannot exceed the revisit interval (and in fact stays below I/2).
        assert expected_age_periodic(10.0, 10.0) < 10.0

    def test_poisson_revisit_formula(self):
        assert expected_freshness_poisson_revisit(1.0, 1.0) == pytest.approx(0.5)
        assert expected_freshness_poisson_revisit(0.0, 1.0) == 1.0
        assert expected_freshness_poisson_revisit(1.0, 0.0) == 0.0

    def test_poisson_revisit_below_periodic(self):
        """Random (Poisson) revisiting is less effective than periodic."""
        rate, frequency = 0.2, 0.5
        periodic = expected_freshness_periodic(rate, 1.0 / frequency)
        poisson = expected_freshness_poisson_revisit(rate, frequency)
        assert poisson < periodic

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            expected_freshness_periodic(-1.0, 1.0)
        with pytest.raises(ValueError):
            expected_freshness_periodic(1.0, 0.0)
        with pytest.raises(ValueError):
            expected_age_periodic(1.0, -1.0)
        with pytest.raises(ValueError):
            expected_freshness_poisson_revisit(-1.0, 1.0)


class TestCrawlPolicy:
    def test_labels(self):
        policies = paper_table2_policies()
        assert set(policies.keys()) == set(PAPER_TABLE2_FRESHNESS.keys())
        for label, policy in policies.items():
            assert policy.label() == label

    def test_batch_duration_validated(self):
        with pytest.raises(ValueError):
            CrawlPolicy(CrawlMode.BATCH, UpdateMode.IN_PLACE, cycle_days=30.0,
                        batch_duration_days=45.0)
        with pytest.raises(ValueError):
            CrawlPolicy(CrawlMode.STEADY, UpdateMode.IN_PLACE, cycle_days=0.0)

    def test_active_duration(self):
        policies = paper_table2_policies()
        assert policies["steady / in-place"].active_duration_days == 30.0
        assert policies["batch / in-place"].active_duration_days == 7.0


class TestTable2:
    """The headline Table 2 reproduction: analytic values vs. the paper."""

    def test_all_four_entries_match_paper(self):
        rate = table2_scenario_rate()
        for label, policy in paper_table2_policies().items():
            measured = time_averaged_freshness(policy, rate)
            assert measured == pytest.approx(PAPER_TABLE2_FRESHNESS[label], abs=0.015), label

    def test_steady_and_batch_inplace_identical(self):
        """The paper: time-averaged freshness is the same for both."""
        rate = table2_scenario_rate()
        policies = paper_table2_policies()
        assert time_averaged_freshness(policies["steady / in-place"], rate) == pytest.approx(
            time_averaged_freshness(policies["batch / in-place"], rate)
        )

    def test_shadowing_hurts_steady_more_than_batch(self):
        rate = table2_scenario_rate()
        policies = paper_table2_policies()
        steady_loss = time_averaged_freshness(
            policies["steady / in-place"], rate
        ) - time_averaged_freshness(policies["steady / shadowing"], rate)
        batch_loss = time_averaged_freshness(
            policies["batch / in-place"], rate
        ) - time_averaged_freshness(policies["batch / shadowing"], rate)
        assert steady_loss > batch_loss

    def test_sensitivity_example_matches_paper(self):
        """Monthly-changing pages, two-week batch: 0.63 vs 0.50."""
        rate = sensitivity_scenario_rate()
        for label, policy in sensitivity_example_policies().items():
            measured = time_averaged_freshness(policy, rate)
            assert measured == pytest.approx(
                PAPER_SENSITIVITY_FRESHNESS[label], abs=0.01
            ), label

    def test_static_pages_always_fresh(self):
        for policy in paper_table2_policies().values():
            assert time_averaged_freshness(policy, 0.0) == 1.0

    def test_population_average(self):
        policy = paper_table2_policies()["steady / in-place"]
        rates = [0.0, table2_scenario_rate()]
        value = population_time_averaged_freshness(policy, rates)
        assert value == pytest.approx(
            (1.0 + time_averaged_freshness(policy, rates[1])) / 2.0
        )
        assert population_time_averaged_freshness(policy, []) == 0.0


class TestTrajectories:
    def test_steady_inplace_constant(self):
        values = [steady_inplace_freshness_at(t, 0.1, 30.0) for t in (0.0, 10.0, 45.0)]
        assert values[0] == pytest.approx(values[1]) == pytest.approx(values[2])

    def test_batch_inplace_sawtooth(self):
        """Figure 7(a): freshness rises during the crawl, decays when idle."""
        rate, cycle, batch = 1.0 / 7.0, 30.0, 7.0
        rising = batch_inplace_freshness_at(6.9, rate, cycle, batch)
        start = batch_inplace_freshness_at(0.1, rate, cycle, batch)
        idle_mid = batch_inplace_freshness_at(15.0, rate, cycle, batch)
        idle_end = batch_inplace_freshness_at(29.9, rate, cycle, batch)
        assert rising > start
        assert rising > idle_mid > idle_end

    def test_batch_inplace_periodic(self):
        rate, cycle, batch = 0.1, 30.0, 7.0
        assert batch_inplace_freshness_at(5.0, rate, cycle, batch) == pytest.approx(
            batch_inplace_freshness_at(35.0, rate, cycle, batch)
        )

    def test_batch_inplace_average_matches_closed_form(self):
        rate, cycle, batch = 1.0 / 120.0, 30.0, 7.0
        samples = [
            batch_inplace_freshness_at(t, rate, cycle, batch)
            for t in [cycle * i / 2000 for i in range(2000)]
        ]
        assert sum(samples) / len(samples) == pytest.approx(
            expected_freshness_periodic(rate, cycle), rel=0.01
        )

    def test_steady_shadow_crawler_grows_from_zero(self):
        """Figure 8(a) top: the shadow collection starts from scratch."""
        rate, cycle = 1.0 / 7.0, 30.0
        assert steady_shadow_freshness_at(0.0, rate, cycle, "crawler") == pytest.approx(0.0)
        quarter = steady_shadow_freshness_at(7.5, rate, cycle, "crawler")
        end = steady_shadow_freshness_at(29.9, rate, cycle, "crawler")
        assert 0.0 < quarter < end

    def test_steady_shadow_current_decays_from_swap(self):
        """Figure 8(a) bottom: the current collection decays between swaps."""
        rate, cycle = 1.0 / 7.0, 30.0
        just_after_swap = steady_shadow_freshness_at(0.0, rate, cycle, "current")
        later = steady_shadow_freshness_at(20.0, rate, cycle, "current")
        assert just_after_swap > later

    def test_steady_shadow_average_matches_closed_form(self):
        rate, cycle = table2_scenario_rate(), 30.0
        samples = [
            steady_shadow_freshness_at(t, rate, cycle, "current")
            for t in [cycle * i / 2000 for i in range(2000)]
        ]
        policy = paper_table2_policies()["steady / shadowing"]
        assert sum(samples) / len(samples) == pytest.approx(
            time_averaged_freshness(policy, rate), rel=0.01
        )

    def test_batch_shadow_swap_continuity(self):
        """At the swap instant the current collection equals the crawler's."""
        rate, cycle, batch = 1.0 / 7.0, 30.0, 7.0
        crawler_at_swap = batch_shadow_freshness_at(batch, rate, cycle, batch, "crawler")
        current_at_swap = batch_shadow_freshness_at(batch, rate, cycle, batch, "current")
        assert crawler_at_swap == pytest.approx(current_at_swap)

    def test_batch_shadow_average_matches_closed_form(self):
        rate, cycle, batch = table2_scenario_rate(), 30.0, 7.0
        samples = [
            batch_shadow_freshness_at(t, rate, cycle, batch, "current")
            for t in [cycle * i / 2000 for i in range(2000)]
        ]
        policy = paper_table2_policies()["batch / shadowing"]
        assert sum(samples) / len(samples) == pytest.approx(
            time_averaged_freshness(policy, rate), rel=0.01
        )

    def test_inplace_dominates_shadowing_pointwise_for_steady(self):
        """Figure 8(a): the dashed (in-place) line is always above the solid."""
        rate, cycle = 1.0 / 7.0, 30.0
        for t in [0.5, 5.0, 12.0, 25.0]:
            assert steady_inplace_freshness_at(t, rate, cycle) >= steady_shadow_freshness_at(
                t, rate, cycle, "current"
            )

    def test_freshness_at_dispatch(self):
        rate = 0.1
        for policy in paper_table2_policies().values():
            value = freshness_at(policy, 3.0, rate)
            assert 0.0 <= value <= 1.0

    def test_trajectory_shape(self):
        policy = paper_table2_policies()["batch / in-place"]
        times, values = freshness_trajectory(policy, 0.1, duration_days=60.0, n_points=50)
        assert len(times) == len(values) == 50
        assert times[0] == 0.0
        assert times[-1] == pytest.approx(60.0)
        assert all(0.0 <= v <= 1.0 for v in values)

    def test_trajectory_validation(self):
        policy = paper_table2_policies()["steady / in-place"]
        with pytest.raises(ValueError):
            freshness_trajectory(policy, 0.1, duration_days=0.0)
        with pytest.raises(ValueError):
            freshness_trajectory(policy, 0.1, duration_days=10.0, n_points=1)

    def test_invalid_collection_name(self):
        with pytest.raises(ValueError):
            steady_shadow_freshness_at(1.0, 0.1, 30.0, collection="bogus")

    def test_zero_rate_trajectories(self):
        assert batch_inplace_freshness_at(3.0, 0.0, 30.0, 7.0) == 1.0
        assert batch_shadow_freshness_at(10.0, 0.0, 30.0, 7.0, "current") == 1.0


class TestDenormalRates:
    """Regression: denormal rates (e.g. 5e-324) underflow products like
    ``rate * batch_duration`` to exactly 0.0, which used to divide by zero
    in the trajectory formulas; such pages must behave as never-changing."""

    DENORMAL = 5e-324

    def test_trajectories_treat_denormal_rate_as_static(self):
        assert batch_inplace_freshness_at(3.0, self.DENORMAL, 30.0, 0.05) == 1.0
        assert steady_shadow_freshness_at(3.0, self.DENORMAL, 0.05) == 1.0
        assert batch_shadow_freshness_at(3.0, self.DENORMAL, 30.0, 0.05, "current") == 1.0
        crawler = batch_shadow_freshness_at(3.0, self.DENORMAL, 30.0, 0.05, "crawler")
        assert 0.0 <= crawler <= 1.0

    def test_freshness_at_dispatch_is_bounded(self):
        for policy in paper_table2_policies().values():
            for collection in ("current", "crawler"):
                value = freshness_at(policy, 2.5, self.DENORMAL, collection)
                assert 0.0 <= value <= 1.0

    def test_expected_age_denormal_rate_is_negligible(self):
        assert 0.0 <= expected_age_periodic(self.DENORMAL, 0.05) < 1e-12
        assert 0.0 <= expected_age_periodic(self.DENORMAL, 90.0) < 1e-12

    def test_expected_age_small_rates_stable(self):
        """Regression: small-but-normal rates used to either divide by an
        underflowed ``rate * x`` (1e-300) or cancel catastrophically to a
        huge negative age (1e-18); the series branch keeps the limit
        ``rate * I^2 / 6`` instead."""
        assert expected_age_periodic(1e-300, 1.0) == pytest.approx(1e-300 / 6.0)
        assert expected_age_periodic(1e-18, 1.0) == pytest.approx(1e-18 / 6.0)
        # The series and closed-form branches agree where they meet.
        below, above = expected_age_periodic(0.00999, 1.0), expected_age_periodic(0.0101, 1.0)
        assert 0.0 < below < above
        assert above == pytest.approx(0.0101 / 6.0, rel=1e-2)
