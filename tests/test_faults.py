"""Fault injection and the failure-aware crawl engine.

Covers the whole robustness stack: the seeded fault models (determinism,
scalar/vector agreement, precedence), the retry policy and failure tracker
(backoff, budgets, circuit breaker, snapshot/merge), the spec-layer knobs
(round trips, hash stability of fault-free specs), cross-engine
bit-identity under faults, checkpoint integrity checksums with
previous-snapshot fallback, and the sharded coordinator's worker-failure
handling. Hypothesis properties pin the determinism and non-starvation
guarantees the engine relies on.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.specs import CrawlerSpec, FaultModelSpec, FaultsSpec, RetrySpec
from repro.core.incremental_crawler import IncrementalCrawler, IncrementalCrawlerConfig
from repro.core.sharded_crawler import ShardedCrawler, ShardRunSpec
from repro.faults import (
    HARD_FAULT_CODES,
    STATUS_OK,
    STATUS_RATE_LIMITED,
    STATUS_SERVER_ERROR,
    STATUS_SOFT_404,
    STATUS_TIMEOUT,
    TRANSIENT_CODES,
    FailureTracker,
    FaultLayer,
    RetryPolicy,
    _retry_jitter,
    build_fault_layer,
)
from repro.simweb.generator import WebGeneratorConfig, generate_web
from repro.storage.backends import MemoryBackend
from repro.storage.checkpoint import (
    CHECKPOINT_PREV_STATE_KEY,
    CHECKPOINT_STATE_KEY,
    CrawlCheckpointer,
    checkpoint_integrity,
)

WEB_CONFIG = WebGeneratorConfig(
    site_scale=0.03,
    pages_per_site=10,
    horizon_days=30.0,
    new_page_fraction=0.25,
    seed=19,
)

FAULT_MODELS = (
    ("transient", {"rate": 0.08}),
    ("site_outage", {"rate": 0.3, "period_days": 5.0, "duration_days": 1.0}),
    ("rate_limit", {"rate": 0.05, "retry_after_days": 0.5}),
    ("soft_404", {"rate": 0.05, "flap_period_days": 3.0}),
    ("latency", {"factor": 3.0, "rate": 0.25}),
)


def _batch(n=200, seed=0):
    rng = np.random.default_rng(seed)
    urls = [f"http://site{i % 17}.test/page{i}" for i in range(n)]
    sites = [f"site{i % 17}" for i in range(n)]
    times = np.sort(rng.uniform(0.0, 30.0, size=n)).tolist()
    return urls, sites, times


# --------------------------------------------------------------------------- #
# Fault models
# --------------------------------------------------------------------------- #


class TestFaultModels:
    def test_deterministic_for_fixed_seed(self):
        urls, sites, times = _batch()
        a = build_fault_layer(FAULT_MODELS, seed=7).resolve(urls, sites, times)
        b = build_fault_layer(FAULT_MODELS, seed=7).resolve(urls, sites, times)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_seed_changes_the_weather(self):
        urls, sites, times = _batch()
        a = build_fault_layer(FAULT_MODELS, seed=7).resolve(urls, sites, times)[0]
        b = build_fault_layer(FAULT_MODELS, seed=8).resolve(urls, sites, times)[0]
        assert not np.array_equal(a, b)

    def test_scalar_resolve_matches_vector(self):
        urls, sites, times = _batch(n=64)
        layer = build_fault_layer(FAULT_MODELS, seed=3)
        codes, retry_after = layer.resolve(urls, sites, times)
        for i, (url, site, at) in enumerate(zip(urls, sites, times)):
            code, hint = layer.resolve_one(url, site, at)
            assert code == codes[i]
            assert hint == retry_after[i]

    def test_first_model_wins(self):
        urls, sites, times = _batch(n=50)
        outage_first = build_fault_layer(
            (
                ("site_outage", {"rate": 1.0, "period_days": 1.0, "duration_days": 1.0}),
                ("transient", {"rate": 1.0, "timeout_fraction": 1.0}),
            ),
            seed=1,
        )
        codes, _ = outage_first.resolve(urls, sites, times)
        assert np.all(codes == STATUS_SERVER_ERROR)
        transient_first = build_fault_layer(
            (
                ("transient", {"rate": 1.0, "timeout_fraction": 1.0}),
                ("site_outage", {"rate": 1.0, "period_days": 1.0, "duration_days": 1.0}),
            ),
            seed=1,
        )
        codes, _ = transient_first.resolve(urls, sites, times)
        assert np.all(codes == STATUS_TIMEOUT)

    def test_zero_rate_layer_is_silent(self):
        urls, sites, times = _batch()
        layer = build_fault_layer(
            tuple((kind, {**params, "rate": 0.0}) for kind, params in FAULT_MODELS),
            seed=5,
        )
        codes, retry_after = layer.resolve(urls, sites, times)
        assert np.all(codes == STATUS_OK)
        assert np.all(retry_after == 0.0)
        assert np.all(layer.latency_factors(times) == 1.0)

    def test_rate_limit_carries_retry_after(self):
        urls, sites, times = _batch()
        layer = build_fault_layer(
            (("rate_limit", {"rate": 1.0, "retry_after_days": 0.75}),), seed=2
        )
        codes, retry_after = layer.resolve(urls, sites, times)
        assert np.all(codes == STATUS_RATE_LIMITED)
        assert np.all(retry_after == 0.75)

    def test_hit_rate_tracks_configured_rate(self):
        urls, sites, times = _batch(n=4000)
        layer = build_fault_layer((("transient", {"rate": 0.3}),), seed=11)
        codes, _ = layer.resolve(urls, sites, times)
        hit_rate = float(np.mean(codes != STATUS_OK))
        assert 0.25 < hit_rate < 0.35

    def test_site_outage_is_correlated_within_a_site(self):
        # Every page of a dark site fails together: group codes by site at
        # one instant and check each site is all-dark or all-clear.
        layer = build_fault_layer(
            (("site_outage", {"rate": 0.5, "period_days": 5.0, "duration_days": 5.0}),),
            seed=4,
        )
        urls = [f"http://s{i // 10}.test/p{i % 10}" for i in range(200)]
        sites = [f"s{i // 10}" for i in range(200)]
        codes, _ = layer.resolve(urls, sites, [2.0] * 200)
        by_site = {}
        for site, code in zip(sites, codes):
            by_site.setdefault(site, set()).add(int(code))
        assert all(len(states) == 1 for states in by_site.values())
        assert any(states == {STATUS_SERVER_ERROR} for states in by_site.values())
        assert any(states == {STATUS_OK} for states in by_site.values())

    def test_latency_is_a_pure_function_of_time(self):
        layer = build_fault_layer(
            (("latency", {"factor": 4.0, "rate": 0.5, "period_days": 1.0}),), seed=6
        )
        times = np.linspace(0.0, 20.0, 200)
        factors = layer.latency_factors(times)
        assert set(np.unique(factors)) <= {1.0, 4.0}
        assert 1.0 in factors and 4.0 in factors
        for i in (0, 57, 133):
            assert layer.latency_factor_one(float(times[i])) == factors[i]
        assert not layer.has_status_models
        assert layer.has_latency_models

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="rate"):
            build_fault_layer((("transient", {"rate": 1.5}),))
        with pytest.raises(ValueError, match="duration_days"):
            build_fault_layer(
                (("site_outage", {"period_days": 1.0, "duration_days": 2.0}),)
            )
        with pytest.raises(ValueError, match="retry_after_days"):
            build_fault_layer((("rate_limit", {"retry_after_days": 0.0}),))
        with pytest.raises(ValueError, match="unknown fault model"):
            build_fault_layer((("cosmic_rays", {}),))

    def test_code_taxonomy(self):
        assert set(HARD_FAULT_CODES) < set(TRANSIENT_CODES)
        assert STATUS_SOFT_404 in TRANSIENT_CODES
        assert STATUS_SOFT_404 not in HARD_FAULT_CODES


# --------------------------------------------------------------------------- #
# Retry policy and failure tracker
# --------------------------------------------------------------------------- #


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_days=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(site_budget=-1)
        with pytest.raises(ValueError):
            RetryPolicy(breaker_threshold=0)
        with pytest.raises(ValueError):
            RetryPolicy(breaker_backoff=0.9)

    def test_to_dict_is_json_plain(self):
        doc = RetryPolicy(site_budget=10).to_dict()
        assert doc["site_budget"] == 10
        assert doc["max_attempts"] == 3
        assert RetryPolicy(**doc) == RetryPolicy(site_budget=10)


class TestFailureTracker:
    def test_exponential_backoff_without_jitter(self):
        policy = RetryPolicy(max_attempts=4, base_delay_days=0.5, multiplier=2.0, jitter=0.0)
        tracker = FailureTracker(policy, seed=0)
        at1 = tracker.on_failure("u", "s", STATUS_TIMEOUT, completed=10.0)
        at2 = tracker.on_failure("u", "s", STATUS_TIMEOUT, completed=11.0)
        at3 = tracker.on_failure("u", "s", STATUS_TIMEOUT, completed=12.0)
        assert at1 == 10.0 + 0.5
        assert at2 == 11.0 + 1.0
        assert at3 == 12.0 + 2.0
        # Fourth attempt exhausts the policy: terminal.
        assert tracker.on_failure("u", "s", STATUS_TIMEOUT, completed=13.0) is None
        assert tracker.counters["retries"] == 3
        assert tracker.counters["retry_drops"] == 1
        assert tracker.counters["timeouts"] == 4

    def test_rate_limited_honours_retry_after(self):
        policy = RetryPolicy(base_delay_days=0.25, jitter=0.0)
        tracker = FailureTracker(policy, seed=0)
        at = tracker.on_failure(
            "u", "s", STATUS_RATE_LIMITED, completed=5.0, retry_after=2.0
        )
        assert at == 5.0 + 2.0  # hint dominates the 0.25 backoff
        assert tracker.counters["rate_limited"] == 1

    def test_success_resets_the_attempt_counter(self):
        policy = RetryPolicy(max_attempts=2, base_delay_days=1.0, jitter=0.0)
        tracker = FailureTracker(policy, seed=0)
        assert tracker.on_failure("u", "s", STATUS_TIMEOUT, 0.0) == 1.0
        tracker.on_success("u", "s")
        # Back to attempt 1 — not terminal despite max_attempts=2.
        assert tracker.on_failure("u", "s", STATUS_TIMEOUT, 2.0) == 3.0

    def test_breaker_trips_after_threshold_and_decays(self):
        policy = RetryPolicy(
            max_attempts=10,
            jitter=0.0,
            breaker_threshold=3,
            breaker_probe_days=1.0,
            breaker_backoff=2.0,
        )
        tracker = FailureTracker(policy, seed=0)
        for i, url in enumerate(["a", "b"]):
            tracker.on_failure(url, "site", STATUS_SERVER_ERROR, float(i))
            assert not tracker.quarantined("site", float(i) + 0.01)
        tracker.on_failure("c", "site", STATUS_SERVER_ERROR, 2.0)
        assert tracker.counters["breaker_trips"] == 1
        assert tracker.quarantined("site", 2.5)
        assert not tracker.quarantined("site", 3.5)  # probe at 2.0 + 1.0
        # One failed probe re-trips with a doubled quarantine.
        tracker.on_failure("d", "site", STATUS_SERVER_ERROR, 3.5)
        assert tracker.counters["breaker_trips"] == 2
        assert tracker.quarantined("site", 5.0)  # until 3.5 + 2.0
        assert not tracker.quarantined("site", 5.6)
        # A success fully resets: next streak needs the whole threshold.
        tracker.on_success("d", "site")
        assert not tracker.quarantined("site", 0.0)
        tracker.on_failure("e", "site", STATUS_SERVER_ERROR, 6.0)
        assert tracker.counters["breaker_trips"] == 2

    def test_site_budget_exhaustion_is_terminal(self):
        policy = RetryPolicy(max_attempts=5, jitter=0.0, site_budget=1)
        tracker = FailureTracker(policy, seed=0)
        assert tracker.on_failure("u1", "s", STATUS_TIMEOUT, 0.0) is not None
        assert tracker.on_failure("u2", "s", STATUS_TIMEOUT, 0.0) is None
        assert tracker.counters["retry_drops"] == 1

    def test_snapshot_round_trip(self):
        tracker = FailureTracker(RetryPolicy(breaker_threshold=2), seed=9)
        tracker.on_failure("u1", "s1", STATUS_TIMEOUT, 1.0)
        tracker.on_failure("u2", "s1", STATUS_SOFT_404, 2.0)
        tracker.on_failure("u3", "s2", STATUS_RATE_LIMITED, 3.0, retry_after=1.0)
        state = tracker.snapshot()
        other = FailureTracker(RetryPolicy(breaker_threshold=2), seed=9)
        other.restore_snapshot(state)
        assert other.snapshot() == state
        # Restored trackers continue identically.
        assert other.on_failure("u4", "s1", STATUS_TIMEOUT, 4.0) == tracker.on_failure(
            "u4", "s1", STATUS_TIMEOUT, 4.0
        )

    def test_merge_snapshots_sums_counters_and_rejects_collisions(self):
        a = FailureTracker(RetryPolicy(), seed=0)
        a.on_failure("u1", "s1", STATUS_TIMEOUT, 1.0)
        b = FailureTracker(RetryPolicy(), seed=0)
        b.on_failure("u2", "s2", STATUS_SERVER_ERROR, 1.0)
        merged = FailureTracker.merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["timeouts"] == 1
        assert merged["counters"]["server_errors"] == 1
        assert merged["counters"]["retries"] == 2
        assert set(merged["attempts"]) == {"u1", "u2"}
        with pytest.raises(ValueError, match="collision"):
            FailureTracker.merge_snapshots([a.snapshot(), a.snapshot()])


# --------------------------------------------------------------------------- #
# Hypothesis properties
# --------------------------------------------------------------------------- #


class TestFailureProperties:
    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 2**32), attempt=st.integers(1, 12))
    def test_retry_jitter_is_deterministic_and_bounded(self, seed, attempt):
        a = _retry_jitter("http://x.test/p", attempt, seed, 0.25)
        b = _retry_jitter("http://x.test/p", attempt, seed, 0.25)
        assert a == b
        assert 0.75 <= a < 1.25

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32),
        statuses=st.lists(
            st.sampled_from(sorted(TRANSIENT_CODES)), min_size=1, max_size=8
        ),
    )
    def test_tracker_replays_identically_for_fixed_seed(self, seed, statuses):
        policy = RetryPolicy(max_attempts=20)
        runs = []
        for _ in range(2):
            tracker = FailureTracker(policy, seed=seed)
            runs.append(
                [
                    tracker.on_failure(f"u{i}", "s", status, float(i))
                    for i, status in enumerate(statuses)
                ]
            )
        assert runs[0] == runs[1]

    @settings(max_examples=25, deadline=None)
    @given(
        threshold=st.integers(1, 5),
        probe_days=st.floats(0.1, 5.0),
        backoff=st.floats(1.0, 4.0),
        trips=st.integers(1, 6),
    )
    def test_breaker_never_starves_a_recovered_site(
        self, threshold, probe_days, backoff, trips
    ):
        """Quarantines always end, and one success clears the breaker."""
        policy = RetryPolicy(
            max_attempts=100,
            jitter=0.0,
            breaker_threshold=threshold,
            breaker_probe_days=probe_days,
            breaker_backoff=backoff,
        )
        tracker = FailureTracker(policy, seed=0)
        at = 0.0
        for trip in range(trips):
            needed = threshold if trip == 0 else 1  # probation re-trips on one
            for i in range(needed):
                tracker.on_failure(f"u{trip}-{i}", "site", STATUS_TIMEOUT, at)
                at += 0.001
            quarantine = probe_days * backoff ** trip
            assert tracker.quarantined("site", at)
            # The quarantine is finite: the probe slot is always reachable.
            assert not tracker.quarantined("site", at + quarantine + 1e-6)
            at += quarantine + 1e-3
        tracker.on_success("probe", "site")
        assert not tracker.quarantined("site", at)
        assert tracker.counters["breaker_trips"] == trips

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**32), n=st.integers(1, 64))
    def test_zero_rate_models_never_claim_a_fetch(self, seed, n):
        urls, sites, times = _batch(n=n, seed=seed % 1000)
        layer = build_fault_layer(
            (
                ("transient", {"rate": 0.0}),
                ("site_outage", {"rate": 0.0}),
                ("rate_limit", {"rate": 0.0}),
                ("soft_404", {"rate": 0.0}),
            ),
            seed=seed,
        )
        codes, retry_after = layer.resolve(urls, sites, times)
        assert np.all(codes == STATUS_OK)
        assert np.all(retry_after == 0.0)


# --------------------------------------------------------------------------- #
# Spec layer
# --------------------------------------------------------------------------- #


class TestFaultSpecs:
    def test_fault_model_spec_validates_kind_and_params(self):
        with pytest.raises(ValueError):
            FaultModelSpec(kind="cosmic_rays")
        with pytest.raises(ValueError):
            FaultModelSpec(kind="transient", params={"rating": 0.1})
        with pytest.raises(ValueError):
            FaultModelSpec(kind="transient", params={"rate": 2.0})
        spec = FaultModelSpec(kind="transient", params={"rate": 0.1})
        assert spec.to_model_tuple() == ("transient", {"rate": 0.1})

    def test_faults_spec_round_trip(self):
        spec = FaultsSpec(
            models=(
                FaultModelSpec(kind="transient", params={"rate": 0.05}),
                FaultModelSpec(kind="latency", params={"factor": 2.0}),
            ),
            seed=9,
        )
        doc = spec.to_dict()
        assert doc["seed"] == 9
        assert [m["kind"] for m in doc["models"]] == ["transient", "latency"]
        assert FaultsSpec.from_dict(doc) == spec
        with pytest.raises(ValueError):
            FaultsSpec(models=())
        with pytest.raises(ValueError):
            FaultsSpec.from_dict({"models": [], "seed": 0, "bogus": 1})

    def test_retry_spec_round_trip(self):
        spec = RetrySpec(max_attempts=5, site_budget=20)
        assert spec.to_retry_policy() == RetryPolicy(max_attempts=5, site_budget=20)
        assert RetrySpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(ValueError):
            RetrySpec(max_attempts=0)

    def test_crawler_spec_omits_faults_when_none(self):
        """Fault-free specs serialize byte-identically to the pre-fault era."""
        doc = CrawlerSpec().to_dict()
        assert "faults" not in doc
        assert "retry" not in doc

    def test_crawler_spec_round_trips_faults(self):
        spec = CrawlerSpec(
            faults=FaultsSpec(
                models=(FaultModelSpec(kind="transient", params={"rate": 0.1}),),
                seed=3,
            ),
            retry=RetrySpec(max_attempts=4),
        )
        restored = CrawlerSpec.from_dict(spec.to_dict())
        assert restored == spec
        assert restored.faults.to_model_tuples() == (("transient", {"rate": 0.1}),)
        assert restored.retry.to_retry_policy().max_attempts == 4

    def test_faults_require_the_incremental_crawler(self):
        with pytest.raises(ValueError, match="incremental"):
            CrawlerSpec(
                kind="periodic",
                faults=FaultsSpec(models=(FaultModelSpec(kind="transient"),)),
            )
        with pytest.raises(ValueError, match="incremental"):
            CrawlerSpec(kind="periodic", retry=RetrySpec())


# --------------------------------------------------------------------------- #
# Engine parity under faults
# --------------------------------------------------------------------------- #


def _run_faulty(engine, fault_models, retry=None, fault_seed=5):
    web = generate_web(WEB_CONFIG)
    crawler = IncrementalCrawler(
        web,
        IncrementalCrawlerConfig(
            collection_capacity=60,
            crawl_budget_per_day=250.0,
            engine=engine,
            measurement_interval_days=1.0,
            track_quality=False,
            fault_models=fault_models,
            fault_seed=fault_seed,
            retry=retry,
        ),
    )
    result = crawler.run(12.0)
    return result, crawler


class TestEngineParityUnderFaults:
    def test_batched_matches_reference_under_full_weather(self):
        retry = RetryPolicy(max_attempts=3, breaker_threshold=4)
        batched, crawler_b = _run_faulty("batched", FAULT_MODELS, retry)
        reference, crawler_r = _run_faulty("reference", FAULT_MODELS, retry)
        assert batched.pages_crawled == reference.pages_crawled
        assert batched.pages_failed == reference.pages_failed
        assert batched.changes_detected == reference.changes_detected
        assert batched.freshness.times == reference.freshness.times
        assert batched.freshness.freshness == reference.freshness.freshness
        counters = crawler_b.failure_counters()
        assert counters == crawler_r.failure_counters()
        assert sum(counters.values()) > 0  # the weather actually blew

    def test_zero_rate_faults_are_bit_identical_to_no_faults(self):
        zero = tuple((kind, {**params, "rate": 0.0}) for kind, params in FAULT_MODELS)
        plain, _ = _run_faulty("batched", None)
        armed, crawler = _run_faulty("batched", zero)
        assert armed.pages_crawled == plain.pages_crawled
        assert armed.pages_failed == plain.pages_failed
        assert armed.changes_detected == plain.changes_detected
        assert armed.freshness.times == plain.freshness.times
        assert armed.freshness.freshness == plain.freshness.freshness
        assert all(v == 0 for v in crawler.failure_counters().values())

    def test_single_shard_sharded_matches_plain_under_faults(self):
        retry = RetryPolicy(max_attempts=3)
        plain, crawler = _run_faulty("batched", FAULT_MODELS, retry)
        web = generate_web(WEB_CONFIG)
        sharded = ShardedCrawler(
            web,
            IncrementalCrawlerConfig(
                collection_capacity=60,
                crawl_budget_per_day=250.0,
                measurement_interval_days=1.0,
                track_quality=False,
                fault_models=FAULT_MODELS,
                fault_seed=5,
                retry=retry,
            ),
            shards=1,
        ).run(12.0)
        assert sharded.pages_crawled == plain.pages_crawled
        assert sharded.freshness.times == plain.freshness.times
        assert sharded.freshness.freshness == plain.freshness.freshness
        assert sharded.failures == crawler.failure_counters()

    def test_soft_404_accounting_is_consistent(self):
        """Every soft-404 is a no-observation handled by the retry path."""
        faulty, crawler = _run_faulty(
            "batched", (("soft_404", {"rate": 0.3}),), RetryPolicy(max_attempts=2)
        )
        counters = crawler.failure_counters()
        assert counters["soft_404s"] > 0
        # Each soft-404 goes through on_failure exactly once: rescheduled or
        # dropped, never anything else — the accounting must close.
        assert counters["retries"] + counters["retry_drops"] == counters["soft_404s"]
        assert counters["timeouts"] == 0  # only the soft-404 model is armed
        assert faulty.pages_crawled > 0
        assert faulty.changes_detected > 0


# --------------------------------------------------------------------------- #
# Checkpoint integrity
# --------------------------------------------------------------------------- #


def _checkpointer(backend, **kwargs):
    return CrawlCheckpointer(backend, every_days=1.0, **kwargs)


class TestCheckpointIntegrity:
    def test_checksum_excludes_itself(self):
        state = {"a": 1, "b": [1.5, 2.5]}
        digest = checkpoint_integrity(state)
        state["integrity"] = digest
        assert checkpoint_integrity(state) == digest

    def test_save_stamps_and_load_verifies(self):
        backend = MemoryBackend()
        saver = _checkpointer(backend)
        saver.save({"tick": 1}, at=1.0)
        state = _checkpointer(backend).load()
        assert state["tick"] == 1
        assert state["integrity"] == checkpoint_integrity(state)

    def test_corrupt_current_slot_falls_back_to_previous(self):
        backend = MemoryBackend()
        saver = _checkpointer(backend)
        saver.save({"tick": 1}, at=1.0)
        saver.save({"tick": 2}, at=2.0)
        # Damage the current slot the way a torn write would.
        damaged = dict(backend.load_state(CHECKPOINT_STATE_KEY))
        damaged["tick"] = 999
        backend.save_state(CHECKPOINT_STATE_KEY, damaged)
        state = _checkpointer(backend).load()
        assert state["tick"] == 1  # the demoted previous snapshot

    def test_both_slots_corrupt_raises(self):
        backend = MemoryBackend()
        saver = _checkpointer(backend)
        saver.save({"tick": 1}, at=1.0)
        saver.save({"tick": 2}, at=2.0)
        for key in (CHECKPOINT_STATE_KEY, CHECKPOINT_PREV_STATE_KEY):
            damaged = dict(backend.load_state(key))
            damaged["tick"] = 999
            backend.save_state(key, damaged)
        with pytest.raises(ValueError, match="corrupt"):
            _checkpointer(backend).load()

    def test_corrupt_current_without_previous_raises(self):
        backend = MemoryBackend()
        saver = _checkpointer(backend)
        saver.save({"tick": 1}, at=1.0)
        damaged = dict(backend.load_state(CHECKPOINT_STATE_KEY))
        damaged["tick"] = 999
        backend.save_state(CHECKPOINT_STATE_KEY, damaged)
        with pytest.raises(ValueError, match="no previous snapshot"):
            _checkpointer(backend).load()

    def test_checksum_less_legacy_checkpoint_is_accepted(self):
        backend = MemoryBackend()
        backend.save_state(CHECKPOINT_STATE_KEY, {"tick": 7})
        assert _checkpointer(backend).load() == {"tick": 7}

    def test_spec_hash_guard_still_applies_after_fallback(self):
        backend = MemoryBackend()
        saver = _checkpointer(backend, spec_hash="a" * 64)
        saver.save({"tick": 1}, at=1.0)
        with pytest.raises(ValueError, match="different spec"):
            _checkpointer(backend, spec_hash="b" * 64).load()


# --------------------------------------------------------------------------- #
# Sharded worker-failure handling
# --------------------------------------------------------------------------- #


class FakeProcess:
    """Stand-in for multiprocessing.Process in coordinator unit tests."""

    def __init__(self, alive=False, exitcode=0, stuck_joins=0):
        self._alive = alive
        self.exitcode = exitcode
        self._stuck_joins = stuck_joins
        self.joins = 0
        self.terminated = False
        self.killed = False

    def is_alive(self):
        return self._alive

    def join(self, timeout=None):
        self.joins += 1
        if self.joins > self._stuck_joins:
            self._alive = False

    def terminate(self):
        self.terminated = True

    def kill(self):
        self.killed = True


def _coordinator(web, **kwargs):
    config = IncrementalCrawlerConfig(
        collection_capacity=20, crawl_budget_per_day=100.0, track_quality=False
    )
    return ShardedCrawler(web, config, shards=2, **kwargs)


def _job(resume=False):
    return ShardRunSpec(
        payload=None,
        view=None,
        config=None,
        duration_days=1.0,
        start_time=0.0,
        storage="sqlite",
        store_path="unused",
        checkpoint_every=1.0,
        spec_hash=None,
        resume=resume,
    )


class TestShardedWorkerFailure:
    def test_reap_escalates_from_join_to_terminate(self, tiny_web):
        coordinator = _coordinator(tiny_web)
        coordinator.JOIN_TIMEOUT_SECONDS = 0.01
        process = FakeProcess(alive=True, stuck_joins=1)
        coordinator._reap(process)
        assert process.terminated
        assert not process.is_alive()

    def test_failure_without_persistence_is_fatal(self, tiny_web):
        coordinator = _coordinator(tiny_web)
        assert not coordinator._can_recover_workers()
        with pytest.raises(RuntimeError, match=r"(?s)shard 1 worker failed.*boom"):
            coordinator._handle_worker_failure(1, "boom", [], {1: 0}, {1: _job()})

    def test_failure_with_persistence_requeues_with_resume(self, tiny_web, tmp_path):
        coordinator = _coordinator(
            tiny_web,
            storage="sqlite",
            store_path=str(tmp_path / "store.db"),
            checkpoint_every=1.0,
            worker_retries=2,
        )
        assert coordinator._can_recover_workers()
        pending, attempts, by_shard = [], {0: 0}, {0: _job()}
        coordinator._handle_worker_failure(0, "killed", pending, attempts, by_shard)
        assert attempts[0] == 1
        assert len(pending) == 1
        assert pending[0].resume is True
        coordinator._handle_worker_failure(0, "killed", pending, attempts, by_shard)
        assert attempts[0] == 2
        with pytest.raises(RuntimeError, match="retries exhausted"):
            coordinator._handle_worker_failure(0, "killed", pending, attempts, by_shard)

    def test_zero_worker_retries_disables_recovery(self, tiny_web, tmp_path):
        coordinator = _coordinator(
            tiny_web,
            storage="sqlite",
            store_path=str(tmp_path / "store.db"),
            checkpoint_every=1.0,
            worker_retries=0,
        )
        assert not coordinator._can_recover_workers()

    def test_silent_worker_death_is_detected(self, tiny_web):
        """A worker that exits (even with code 0) without a result must not
        hang the coordinator: _check_workers feeds the retry-or-raise path."""
        coordinator = _coordinator(tiny_web)
        running = {1: FakeProcess(alive=False, exitcode=0)}
        with pytest.raises(RuntimeError, match="exited with code 0"):
            coordinator._check_workers(running, {}, [], {1: 0}, {1: _job()})
        assert not running  # the dead worker was removed either way

    def test_live_or_reported_workers_are_left_alone(self, tiny_web):
        coordinator = _coordinator(tiny_web)
        alive = FakeProcess(alive=True)
        reported = FakeProcess(alive=False, exitcode=0)
        running = {0: alive, 1: reported}
        coordinator._check_workers(
            running, {1: {"payload": True}}, [], {0: 0, 1: 0}, {}
        )
        assert running == {0: alive, 1: reported}

    def test_negative_worker_retries_rejected(self, tiny_web):
        with pytest.raises(ValueError, match="worker_retries"):
            _coordinator(tiny_web, worker_retries=-1)
