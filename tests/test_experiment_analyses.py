"""Tests for the Figure 2/4/5/6 analyses over a monitored observation log."""

import pytest

from repro.experiment.change_interval import analyze_change_intervals
from repro.experiment.lifespan_analysis import analyze_lifespans
from repro.experiment.poisson_fit import fit_poisson_model
from repro.experiment.survival import analyze_survival


class TestChangeIntervalAnalysis:
    def test_fractions_sum_to_one(self, observation_log):
        analysis = analyze_change_intervals(observation_log)
        assert sum(analysis.overall.fractions()) == pytest.approx(1.0)

    def test_domains_present(self, observation_log):
        analysis = analyze_change_intervals(observation_log)
        assert set(analysis.by_domain) >= {"com", "edu", "gov", "netorg"}

    def test_com_changes_most_gov_least(self, observation_log):
        """Figure 2(b): com pages change far more often than gov pages."""
        analysis = analyze_change_intervals(observation_log)
        com_daily = analysis.domain_fractions("com")["<=1day"]
        gov_daily = analysis.domain_fractions("gov")["<=1day"]
        assert com_daily > 0.25
        assert gov_daily < 0.1
        assert com_daily > 3 * gov_daily

    def test_edu_gov_mostly_static(self, observation_log):
        """Figure 2(b): over half of edu/gov pages never changed."""
        analysis = analyze_change_intervals(observation_log)
        assert analysis.domain_fractions("edu")[">4months"] > 0.4
        assert analysis.domain_fractions("gov")[">4months"] > 0.4

    def test_overall_daily_fraction_above_20_percent(self, observation_log):
        """Figure 2(a): more than 20% of pages changed at (almost) every visit."""
        analysis = analyze_change_intervals(observation_log)
        assert analysis.overall_fractions()["<=1day"] > 0.15

    def test_mean_interval_estimate_around_four_months(self, observation_log):
        """Section 3.1: the crude overall average change interval ~ 4 months."""
        analysis = analyze_change_intervals(observation_log)
        assert 60.0 <= analysis.mean_interval_estimate_days <= 260.0

    def test_min_days_observed_filter(self, observation_log):
        strict = analyze_change_intervals(observation_log, min_days_observed=30)
        lax = analyze_change_intervals(observation_log, min_days_observed=2)
        assert strict.overall.total <= lax.overall.total


class TestLifespanAnalysis:
    def test_fractions_sum_to_one(self, observation_log):
        analysis = analyze_lifespans(observation_log)
        assert sum(analysis.method1_overall.fractions()) == pytest.approx(1.0)
        assert sum(analysis.method2_overall.fractions()) == pytest.approx(1.0)

    def test_method2_shifts_mass_to_longer_lifespans(self, observation_log):
        """Figure 4(a): Method 2 doubles censored spans, so its histogram has
        at least as much mass in the longest bucket."""
        analysis = analyze_lifespans(observation_log)
        m1 = analysis.method1_overall.labelled_fractions()
        m2 = analysis.method2_overall.labelled_fractions()
        assert m2[">4months"] >= m1[">4months"]
        assert m1["<=1week"] >= m2["<=1week"]

    def test_methods_agree_on_short_lifespans(self, observation_log):
        """The paper: Methods 1 and 2 give similar numbers for short-lived pages."""
        analysis = analyze_lifespans(observation_log)
        m1 = analysis.method1_overall.labelled_fractions()
        m2 = analysis.method2_overall.labelled_fractions()
        assert m1["<=1week"] == pytest.approx(m2["<=1week"], abs=0.05)

    def test_majority_of_pages_live_longer_than_a_month(self, observation_log):
        """Figure 4(a): more than 70% of pages stayed over a month; we accept
        a looser 55% bound for the scaled-down synthetic web."""
        analysis = analyze_lifespans(observation_log)
        assert analysis.fraction_longer_than_a_month_method1() > 0.55

    def test_com_pages_shortest_lived(self, observation_log):
        """Figure 4(b): com pages disappear soonest, edu/gov last longest."""
        analysis = analyze_lifespans(observation_log)
        com = analysis.method1_by_domain["com"].labelled_fractions()[">4months"]
        edu = analysis.method1_by_domain["edu"].labelled_fractions()[">4months"]
        gov = analysis.method1_by_domain["gov"].labelled_fractions()[">4months"]
        assert com < edu
        assert com < gov

    def test_censored_fraction_positive(self, observation_log):
        analysis = analyze_lifespans(observation_log)
        assert 0.0 < analysis.censored_fraction <= 1.0


class TestSurvivalAnalysis:
    def test_curves_start_at_one_and_decrease(self, observation_log):
        analysis = analyze_survival(observation_log)
        curve = analysis.overall
        assert curve.unchanged_fraction[0] == pytest.approx(1.0, abs=0.05)
        assert all(
            a >= b - 1e-12
            for a, b in zip(curve.unchanged_fraction, curve.unchanged_fraction[1:])
        )

    def test_half_change_day_overall_in_paper_ballpark(self, observation_log):
        """Figure 5(a): about 50 days for half the web to change. The synthetic
        web reproduces the ordering and rough magnitude."""
        analysis = analyze_survival(observation_log)
        half_day = analysis.overall.half_change_day()
        assert half_day is not None
        assert 3.0 <= half_day <= 90.0

    def test_com_changes_much_faster_than_gov(self, observation_log):
        """Figure 5(b): com ~11 days, gov ~4 months."""
        analysis = analyze_survival(observation_log)
        com_half = analysis.by_domain["com"].half_change_day()
        gov_half = analysis.by_domain["gov"].half_change_day()
        overall_half = analysis.overall.half_change_day()
        assert com_half is not None
        assert com_half < 30.0
        assert com_half <= overall_half
        if gov_half is not None:
            assert gov_half > 2 * com_half
        # gov may never reach 50% within the horizon, matching the paper.

    def test_half_change_days_mapping(self, observation_log):
        analysis = analyze_survival(observation_log)
        mapping = analysis.half_change_days()
        assert "overall" in mapping
        assert "com" in mapping

    def test_fraction_at_clamps(self, observation_log):
        analysis = analyze_survival(observation_log)
        curve = analysis.overall
        assert curve.fraction_at(-5) == curve.unchanged_fraction[0]
        assert curve.fraction_at(10**6) == curve.unchanged_fraction[-1]


class TestPoissonFit:
    def test_ten_day_pages_look_exponential(self, observation_log):
        """Figure 6(a): pages with a ~10 day change interval have exponential
        inter-change intervals."""
        result = fit_poisson_model(observation_log, target_interval_days=10.0)
        assert result.n_pages > 0
        assert result.n_intervals >= 20
        assert result.fit is not None
        assert result.fit.log_r_squared > 0.8

    def test_twenty_day_pages_rate_matches_target(self, observation_log):
        """Figure 6(b): the fitted rate corresponds to the selected interval."""
        result = fit_poisson_model(observation_log, target_interval_days=20.0)
        if result.fit is None:
            pytest.skip("not enough 20-day pages in the scaled-down web")
        assert result.fit.mean_interval == pytest.approx(20.0, rel=0.5)

    def test_histogram_fractions_sum_to_one(self, observation_log):
        result = fit_poisson_model(observation_log, target_interval_days=10.0)
        assert sum(result.histogram_fractions) == pytest.approx(1.0, abs=1e-6)

    def test_predicted_fractions_follow_exponential_decay(self, observation_log):
        result = fit_poisson_model(observation_log, target_interval_days=10.0)
        predicted = list(result.predicted_fractions)
        assert all(a >= b for a, b in zip(predicted, predicted[1:]))

    def test_invalid_arguments(self, observation_log):
        with pytest.raises(ValueError):
            fit_poisson_model(observation_log, target_interval_days=0.0)
        with pytest.raises(ValueError):
            fit_poisson_model(observation_log, target_interval_days=10.0, tolerance=2.0)
