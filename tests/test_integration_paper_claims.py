"""Integration tests asserting the paper's headline claims end to end.

These tests tie several subsystems together (analytic models + Monte-Carlo
simulator + calibrated page populations) and assert the claims the paper's
abstract and conclusions rest on. They complement the per-figure benchmarks:
the benchmarks print paper-vs-measured tables, these tests enforce the
qualitative conclusions in CI.
"""

import numpy as np
import pytest

from repro.freshness.analytic import time_averaged_freshness
from repro.freshness.optimal_allocation import (
    optimal_revisit_frequencies,
    proportional_revisit_frequencies,
    total_freshness,
    uniform_revisit_frequencies,
)
from repro.simulation.crawler_sim import simulate_crawl_policy
from repro.simulation.scenarios import (
    PAPER_SENSITIVITY_FRESHNESS,
    PAPER_TABLE2_FRESHNESS,
    paper_table2_policies,
    sensitivity_example_policies,
    sensitivity_scenario_rate,
    table2_scenario_rate,
)
from repro.simweb.domains import DOMAIN_PROFILES, RATE_CLASSES


def calibrated_rates(n_pages: int, seed: int = 0) -> list:
    """Page change rates drawn from the calibrated per-domain mixtures."""
    rng = np.random.default_rng(seed)
    total_sites = sum(profile.site_count for profile in DOMAIN_PROFILES.values())
    rates = []
    for profile in DOMAIN_PROFILES.values():
        count = int(round(n_pages * profile.site_count / total_sites))
        for _ in range(count):
            index = rng.choice(len(RATE_CLASSES), p=np.asarray(profile.rate_mixture))
            rates.append(RATE_CLASSES[index].rate_per_day)
    return rates


class TestTable2EndToEnd:
    """Claim: the Table 2 numbers follow from the Poisson model, and an
    independent Monte-Carlo simulation agrees with the closed form."""

    def test_analytic_matches_paper_values(self):
        rate = table2_scenario_rate()
        for label, policy in paper_table2_policies().items():
            assert time_averaged_freshness(policy, rate) == pytest.approx(
                PAPER_TABLE2_FRESHNESS[label], abs=0.015
            )

    def test_simulation_matches_analytic(self):
        rate = table2_scenario_rate()
        rates = [rate] * 300
        for label, policy in paper_table2_policies().items():
            simulated = simulate_crawl_policy(rates, policy, n_cycles=6, seed=3)
            analytic = time_averaged_freshness(policy, rate)
            assert simulated.mean_freshness == pytest.approx(analytic, abs=0.05), label

    def test_sensitivity_example(self):
        rate = sensitivity_scenario_rate()
        for label, policy in sensitivity_example_policies().items():
            assert time_averaged_freshness(policy, rate) == pytest.approx(
                PAPER_SENSITIVITY_FRESHNESS[label], abs=0.01
            )


class TestSchedulingClaims:
    """Claims of Section 4.3 / Figure 9 on the calibrated page mix."""

    def test_optimal_policy_beats_fixed_frequency_by_paper_margin(self):
        rates = calibrated_rates(400, seed=1)
        budget = len(rates) / 15.0
        fixed = total_freshness(rates, uniform_revisit_frequencies(rates, budget))
        optimal = total_freshness(rates, optimal_revisit_frequencies(rates, budget))
        improvement = (optimal - fixed) / fixed
        # The paper (citing CGM99b) reports 10-23%; require a material gain
        # and nothing beyond the plausible range.
        assert 0.05 < improvement < 0.40

    def test_proportional_policy_is_not_optimal(self):
        """The intuitive policy the paper warns about actually loses."""
        rates = calibrated_rates(400, seed=2)
        budget = len(rates) / 15.0
        fixed = total_freshness(rates, uniform_revisit_frequencies(rates, budget))
        proportional = total_freshness(
            rates, proportional_revisit_frequencies(rates, budget)
        )
        optimal = total_freshness(rates, optimal_revisit_frequencies(rates, budget))
        assert optimal > proportional
        assert proportional < fixed

    def test_very_fast_pages_are_abandoned(self):
        """Figure 9: pages changing much faster than the budget allows are
        not worth visiting at all."""
        rates = [0.05] * 50 + [100.0] * 10
        budget = 5.0
        allocation = optimal_revisit_frequencies(rates, budget)
        fast_allocation = sum(allocation[50:])
        assert fast_allocation < 0.01 * budget


class TestDesignSpaceOrdering:
    """Figure 10: the incremental crawler's design choices dominate."""

    def test_incremental_archetype_has_highest_freshness(self):
        rate = table2_scenario_rate()
        policies = paper_table2_policies()
        freshness = {
            name: time_averaged_freshness(policy, rate)
            for name, policy in policies.items()
        }
        assert freshness["steady / in-place"] == max(freshness.values())
        assert freshness["steady / shadowing"] == min(freshness.values())

    def test_shadowing_penalty_grows_with_change_rate(self):
        """The Section 4 sensitivity argument: the more dynamic the pages,
        the more in-place updates matter."""
        policies = paper_table2_policies()
        slow, fast = 1.0 / 120.0, 1.0 / 15.0
        penalty_slow = time_averaged_freshness(
            policies["steady / in-place"], slow
        ) - time_averaged_freshness(policies["steady / shadowing"], slow)
        penalty_fast = time_averaged_freshness(
            policies["steady / in-place"], fast
        ) - time_averaged_freshness(policies["steady / shadowing"], fast)
        assert penalty_fast > penalty_slow
