"""Tests for repro.ranking: PageRank, site-level PageRank and HITS."""

import pytest

from repro.ranking.hits import hits
from repro.ranking.pagerank import (
    cho_pagerank,
    estimated_pagerank_for_candidates,
    pagerank,
)
from repro.ranking.site_rank import build_site_graph, site_pagerank, top_sites


class TestPageRank:
    def test_scores_sum_to_one(self):
        graph = {"a": ["b"], "b": ["c"], "c": ["a"]}
        scores = pagerank(graph)
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_symmetric_cycle_is_uniform(self):
        graph = {"a": ["b"], "b": ["c"], "c": ["a"]}
        scores = pagerank(graph)
        assert scores["a"] == pytest.approx(scores["b"], abs=1e-8)
        assert scores["b"] == pytest.approx(scores["c"], abs=1e-8)

    def test_popular_node_scores_higher(self):
        graph = {
            "hub": ["popular"],
            "a": ["popular"],
            "b": ["popular"],
            "popular": ["hub"],
        }
        scores = pagerank(graph)
        assert scores["popular"] > scores["a"]
        assert scores["popular"] == max(scores.values())

    def test_dangling_nodes_handled(self):
        graph = {"a": ["b"], "b": []}
        scores = pagerank(graph)
        assert sum(scores.values()) == pytest.approx(1.0)
        assert scores["b"] > scores["a"]

    def test_link_targets_outside_key_set_included(self):
        graph = {"a": ["ghost"]}
        scores = pagerank(graph)
        assert "ghost" in scores

    def test_empty_graph(self):
        assert pagerank({}) == {}

    def test_damping_bounds(self):
        with pytest.raises(ValueError):
            pagerank({"a": []}, damping=1.5)

    def test_damping_zero_gives_uniform(self):
        graph = {"a": ["b"], "b": ["a"], "c": ["a"]}
        scores = pagerank(graph, damping=0.0)
        assert scores["a"] == pytest.approx(1 / 3, abs=1e-9)

    def test_cho_parameterisation_matches_complement(self):
        graph = {"a": ["b", "c"], "b": ["c"], "c": ["a"]}
        assert cho_pagerank(graph, d=0.9) == pytest.approx(pagerank(graph, damping=0.1))

    def test_candidate_estimation(self):
        graph = {"a": ["candidate"], "b": ["candidate"], "candidate": []}
        estimates = estimated_pagerank_for_candidates(
            {"a": ["candidate"], "b": ["candidate"]}, ["candidate", "unlinked"]
        )
        assert estimates["candidate"] > 0.0
        assert estimates["unlinked"] == 0.0


class TestSiteRank:
    def _page_graph(self):
        return {
            "http://a.com/1": ["http://a.com/2", "http://b.com/1"],
            "http://a.com/2": ["http://b.com/1"],
            "http://b.com/1": ["http://c.com/1"],
            "http://c.com/1": ["http://b.com/1"],
        }

    @staticmethod
    def _site_of(url):
        return url.split("/")[2]

    def test_build_site_graph_drops_intra_site_links(self):
        site_graph = build_site_graph(self._page_graph(), self._site_of)
        assert "a.com" in site_graph
        assert "a.com" not in site_graph["a.com"]
        assert site_graph["a.com"] == ["b.com"]

    def test_site_pagerank_sums_to_one(self):
        scores = site_pagerank(self._page_graph(), self._site_of)
        assert sum(scores.values()) == pytest.approx(1.0)

    def test_most_linked_site_wins(self):
        scores = site_pagerank(self._page_graph(), self._site_of)
        assert max(scores, key=scores.get) == "b.com"

    def test_top_sites_ordering(self):
        scores = {"a": 0.5, "b": 0.3, "c": 0.2}
        assert top_sites(scores, 2) == ["a", "b"]

    def test_top_sites_bounds(self):
        assert top_sites({"a": 1.0}, 5) == ["a"]
        with pytest.raises(ValueError):
            top_sites({"a": 1.0}, -1)


class TestHits:
    def test_authority_goes_to_linked_node(self):
        graph = {"h1": ["auth"], "h2": ["auth"], "auth": []}
        hubs, authorities = hits(graph)
        assert authorities["auth"] == max(authorities.values())
        assert hubs["h1"] > hubs["auth"]

    def test_scores_normalised(self):
        graph = {"a": ["b"], "b": ["c"], "c": ["a"]}
        hubs, authorities = hits(graph)
        assert sum(hubs.values()) == pytest.approx(1.0)
        assert sum(authorities.values()) == pytest.approx(1.0)

    def test_empty_graph(self):
        assert hits({}) == ({}, {})

    def test_edgeless_graph(self):
        hubs, authorities = hits({"a": [], "b": []})
        assert all(v == 0.0 for v in hubs.values())
        assert all(v == 0.0 for v in authorities.values())

    def test_targets_outside_key_set_included(self):
        hubs, authorities = hits({"a": ["ghost"]})
        assert "ghost" in authorities
