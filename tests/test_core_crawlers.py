"""End-to-end tests for the incremental and periodic crawlers."""

import pytest

from repro.core.incremental_crawler import IncrementalCrawler, IncrementalCrawlerConfig
from repro.core.periodic_crawler import PeriodicCrawler, PeriodicCrawlerConfig


def incremental_config(**overrides):
    defaults = dict(
        collection_capacity=80,
        crawl_budget_per_day=400.0,
        revisit_policy="optimal",
        estimator="ep",
        ranking_interval_days=3.0,
        measurement_interval_days=1.0,
        track_quality=False,
    )
    defaults.update(overrides)
    return IncrementalCrawlerConfig(**defaults)


class TestIncrementalCrawlerConfig:
    def test_defaults_valid(self):
        IncrementalCrawlerConfig()

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            IncrementalCrawlerConfig(collection_capacity=0)
        with pytest.raises(ValueError):
            IncrementalCrawlerConfig(crawl_budget_per_day=0.0)
        with pytest.raises(ValueError):
            IncrementalCrawlerConfig(revisit_policy="bogus")
        with pytest.raises(ValueError):
            IncrementalCrawlerConfig(ranking_interval_days=0.0)
        with pytest.raises(ValueError):
            IncrementalCrawlerConfig(measurement_interval_days=0.0)

    def test_policy_factory(self):
        from repro.freshness.policies import (
            OptimalRevisitPolicy,
            ProportionalRevisitPolicy,
            UniformRevisitPolicy,
        )

        assert isinstance(
            IncrementalCrawlerConfig(revisit_policy="uniform").build_revisit_policy(),
            UniformRevisitPolicy,
        )
        assert isinstance(
            IncrementalCrawlerConfig(revisit_policy="proportional").build_revisit_policy(),
            ProportionalRevisitPolicy,
        )
        assert isinstance(
            IncrementalCrawlerConfig(revisit_policy="optimal").build_revisit_policy(),
            OptimalRevisitPolicy,
        )


class TestIncrementalCrawler:
    def test_requires_seeds(self, tiny_web):
        with pytest.raises(ValueError):
            IncrementalCrawler(tiny_web, incremental_config(), seed_urls=[])

    def test_run_collects_pages(self, tiny_web):
        crawler = IncrementalCrawler(tiny_web, incremental_config())
        result = crawler.run(duration_days=20.0)
        assert result.pages_crawled > 0
        assert len(crawler.collection.current_records()) > 10

    def test_collection_respects_capacity(self, tiny_web):
        crawler = IncrementalCrawler(tiny_web, incremental_config(collection_capacity=30))
        crawler.run(duration_days=20.0)
        assert len(crawler.collection.current_records()) <= 30

    def test_freshness_series_recorded(self, tiny_web):
        crawler = IncrementalCrawler(tiny_web, incremental_config())
        result = crawler.run(duration_days=15.0)
        assert len(result.freshness) >= 14
        assert all(0.0 <= f <= 1.0 for f in result.freshness.freshness)

    def test_steady_state_freshness_is_high(self, tiny_web):
        """With ample budget the incremental crawler keeps the collection
        fresh (the left-hand column of Figure 10)."""
        crawler = IncrementalCrawler(tiny_web, incremental_config())
        result = crawler.run(duration_days=40.0)
        steady = result.freshness.after(20.0)
        assert steady.mean_freshness() > 0.7

    def test_changes_detected(self, tiny_web):
        crawler = IncrementalCrawler(tiny_web, incremental_config())
        result = crawler.run(duration_days=30.0)
        assert result.changes_detected > 0

    def test_rate_estimates_accumulate(self, tiny_web):
        crawler = IncrementalCrawler(tiny_web, incremental_config())
        crawler.run(duration_days=30.0)
        estimates = crawler.update_module.estimated_rates()
        assert len(estimates) > 5
        assert all(rate >= 0 for rate in estimates.values())

    def test_quality_tracking(self, tiny_web):
        crawler = IncrementalCrawler(
            tiny_web, incremental_config(track_quality=True, collection_capacity=40)
        )
        result = crawler.run(duration_days=30.0)
        assert result.quality
        assert result.final_quality() > 0.3

    def test_run_duration_validation(self, tiny_web):
        crawler = IncrementalCrawler(tiny_web, incremental_config())
        with pytest.raises(ValueError):
            crawler.run(duration_days=0.0)

    def test_eb_estimator_end_to_end(self, tiny_web):
        crawler = IncrementalCrawler(tiny_web, incremental_config(estimator="eb"))
        result = crawler.run(duration_days=15.0)
        assert result.pages_crawled > 0

    def test_uniform_policy_end_to_end(self, tiny_web):
        crawler = IncrementalCrawler(tiny_web, incremental_config(revisit_policy="uniform"))
        result = crawler.run(duration_days=15.0)
        assert result.pages_crawled > 0

    def test_importance_weighted_scheduling(self, tiny_web):
        crawler = IncrementalCrawler(
            tiny_web,
            incremental_config(use_importance_in_scheduling=True, track_quality=False),
        )
        result = crawler.run(duration_days=15.0)
        assert result.pages_crawled > 0


class TestPeriodicCrawlerConfig:
    def test_defaults_valid(self):
        PeriodicCrawlerConfig()

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            PeriodicCrawlerConfig(collection_capacity=0)
        with pytest.raises(ValueError):
            PeriodicCrawlerConfig(crawl_budget_per_day=0.0)
        with pytest.raises(ValueError):
            PeriodicCrawlerConfig(cycle_days=0.0)

    def test_batch_duration(self):
        config = PeriodicCrawlerConfig(collection_capacity=100, crawl_budget_per_day=50.0)
        assert config.batch_duration_days == pytest.approx(2.0)


class TestPeriodicCrawler:
    def _config(self, **overrides):
        defaults = dict(
            collection_capacity=80,
            crawl_budget_per_day=400.0,
            cycle_days=10.0,
            measurement_interval_days=1.0,
            track_quality=False,
        )
        defaults.update(overrides)
        return PeriodicCrawlerConfig(**defaults)

    def test_requires_seeds(self, tiny_web):
        with pytest.raises(ValueError):
            PeriodicCrawler(tiny_web, self._config(), seed_urls=[])

    def test_cycles_completed(self, tiny_web):
        crawler = PeriodicCrawler(tiny_web, self._config())
        result = crawler.run(duration_days=35.0)
        assert result.cycles_completed >= 3
        assert result.pages_crawled > 0

    def test_current_collection_swapped_in(self, tiny_web):
        crawler = PeriodicCrawler(tiny_web, self._config())
        crawler.run(duration_days=25.0)
        assert len(crawler.collection.current_records()) > 0
        assert crawler.collection.swap_times

    def test_freshness_recorded(self, tiny_web):
        crawler = PeriodicCrawler(tiny_web, self._config())
        result = crawler.run(duration_days=30.0)
        assert len(result.freshness) > 0
        assert 0.0 <= result.mean_freshness() <= 1.0

    def test_run_duration_validation(self, tiny_web):
        crawler = PeriodicCrawler(tiny_web, self._config())
        with pytest.raises(ValueError):
            crawler.run(duration_days=-1.0)


class TestIncrementalVersusPeriodic:
    def test_incremental_collection_is_fresher(self, tiny_web):
        """The paper's central claim: the incremental crawler maintains a
        fresher collection than the periodic crawler at the same average
        crawl speed."""
        capacity = 80
        duration = 40.0
        cycle = 10.0
        # Same average number of fetches per day for both crawlers.
        average_budget = 8.0 * capacity / cycle
        incremental = IncrementalCrawler(
            tiny_web,
            incremental_config(
                collection_capacity=capacity, crawl_budget_per_day=average_budget
            ),
        )
        periodic = PeriodicCrawler(
            tiny_web,
            PeriodicCrawlerConfig(
                collection_capacity=capacity,
                crawl_budget_per_day=average_budget * 4,  # batch: higher peak speed
                cycle_days=cycle,
                measurement_interval_days=1.0,
                track_quality=False,
            ),
        )
        incremental_result = incremental.run(duration)
        periodic_result = periodic.run(duration)
        # Compare after both have completed their first cycle.
        inc_steady = incremental_result.freshness.after(cycle)
        per_steady = periodic_result.freshness.after(cycle)
        assert inc_steady.mean_freshness() > per_steady.mean_freshness()
