"""Tests for the simulation package: clock, events, tracker, policy simulator."""

import pytest

from repro.freshness.analytic import CrawlMode, CrawlPolicy, UpdateMode, time_averaged_freshness
from repro.simulation.clock import VirtualClock
from repro.simulation.crawler_sim import (
    simulate_crawl_policy,
    simulate_revisit_allocation,
)
from repro.simulation.events import EventQueue
from repro.simulation.freshness_tracker import FreshnessTimeSeries
from repro.simulation.scenarios import (
    figure7_change_rate,
    figure7_policies,
    figure8_policies,
    paper_table2_policies,
    table2_scenario_rate,
)


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance(self):
        clock = VirtualClock()
        clock.advance(2.5)
        assert clock.now == 2.5

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_advance_to_never_goes_back(self):
        clock = VirtualClock(5.0)
        clock.advance_to(3.0)
        assert clock.now == 5.0
        clock.advance_to(7.0)
        assert clock.now == 7.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(-1.0)


class TestEventQueue:
    def test_events_run_in_time_order(self):
        clock = VirtualClock()
        queue = EventQueue(clock)
        order = []
        queue.schedule(2.0, lambda t: order.append("b"))
        queue.schedule(1.0, lambda t: order.append("a"))
        queue.schedule(3.0, lambda t: order.append("c"))
        queue.run_until(10.0)
        assert order == ["a", "b", "c"]

    def test_clock_advanced_to_event_times(self):
        clock = VirtualClock()
        queue = EventQueue(clock)
        seen = []
        queue.schedule(1.5, lambda t: seen.append(t))
        queue.run_until(5.0)
        assert seen == [1.5]
        assert clock.now == 5.0

    def test_events_beyond_end_not_run(self):
        clock = VirtualClock()
        queue = EventQueue(clock)
        ran = []
        queue.schedule(10.0, lambda t: ran.append(t))
        queue.run_until(5.0)
        assert ran == []
        assert queue.pending == 1

    def test_recurring_events(self):
        clock = VirtualClock()
        queue = EventQueue(clock)
        count = [0]

        def recur(t):
            count[0] += 1
            queue.schedule(t + 1.0, recur)

        queue.schedule(0.0, recur)
        queue.run_until(5.5)
        assert count[0] == 6  # t = 0,1,2,3,4,5

    def test_cancel(self):
        clock = VirtualClock()
        queue = EventQueue(clock)
        ran = []
        event = queue.schedule(1.0, lambda t: ran.append(t))
        queue.cancel(event)
        queue.run_until(5.0)
        assert ran == []

    def test_past_scheduling_rejected(self):
        clock = VirtualClock(10.0)
        queue = EventQueue(clock)
        with pytest.raises(ValueError):
            queue.schedule(5.0, lambda t: None)

    def test_schedule_after(self):
        clock = VirtualClock(2.0)
        queue = EventQueue(clock)
        seen = []
        queue.schedule_after(3.0, lambda t: seen.append(t))
        queue.run_until(10.0)
        assert seen == [5.0]

    def test_max_events_cap(self):
        clock = VirtualClock()
        queue = EventQueue(clock)

        def recur(t):
            queue.schedule(t + 0.1, recur)

        queue.schedule(0.0, recur)
        executed = queue.run_until(1000.0, max_events=50)
        assert executed == 50


class TestFreshnessTimeSeries:
    def test_add_and_mean(self):
        series = FreshnessTimeSeries()
        series.add(0.0, 1.0)
        series.add(1.0, 0.0)
        series.add(2.0, 0.0)
        assert series.mean_freshness() == pytest.approx(0.5)

    def test_rejects_out_of_order(self):
        series = FreshnessTimeSeries()
        series.add(1.0, 0.5)
        with pytest.raises(ValueError):
            series.add(0.5, 0.5)

    def test_rejects_out_of_range_freshness(self):
        series = FreshnessTimeSeries()
        with pytest.raises(ValueError):
            series.add(0.0, 1.5)

    def test_after_trims_warmup(self):
        series = FreshnessTimeSeries()
        for t in range(10):
            series.add(float(t), 0.1 if t < 5 else 0.9)
        trimmed = series.after(5.0)
        assert len(trimmed) == 5
        assert trimmed.mean_freshness() == pytest.approx(0.9)

    def test_as_series(self):
        series = FreshnessTimeSeries()
        series.add(0.0, 0.5, age=1.0)
        times, values = series.as_series()
        assert times == (0.0,)
        assert values == (0.5,)
        assert series.mean_age() == 1.0


class TestSimulateCrawlPolicy:
    def test_matches_analytic_for_all_table2_policies(self):
        """The Monte-Carlo simulator agrees with the closed-form freshness."""
        rate = table2_scenario_rate()
        rates = [rate] * 400
        for label, policy in paper_table2_policies().items():
            result = simulate_crawl_policy(rates, policy, n_cycles=6, seed=11)
            expected = time_averaged_freshness(policy, rate)
            assert result.mean_freshness == pytest.approx(expected, abs=0.04), label

    def test_batch_inplace_oscillates_more_than_steady(self):
        rate = figure7_change_rate()
        rates = [rate] * 300
        policies = figure7_policies()
        batch = simulate_crawl_policy(rates, policies["batch-mode"], n_cycles=4, seed=1)
        steady = simulate_crawl_policy(rates, policies["steady"], n_cycles=4, seed=1)
        batch_spread = max(batch.freshness) - min(batch.freshness)
        steady_spread = max(steady.freshness) - min(steady.freshness)
        assert batch_spread > steady_spread

    def test_freshness_values_bounded(self):
        rates = [0.1] * 50
        policy = paper_table2_policies()["batch / shadowing"]
        result = simulate_crawl_policy(rates, policy, n_cycles=3, seed=5)
        assert all(0.0 <= f <= 1.0 for f in result.freshness)

    def test_static_pages_always_fresh(self):
        rates = [0.0] * 20
        policy = paper_table2_policies()["steady / in-place"]
        result = simulate_crawl_policy(rates, policy, n_cycles=2, seed=2)
        assert result.mean_freshness == pytest.approx(1.0)

    def test_invalid_inputs(self):
        policy = paper_table2_policies()["steady / in-place"]
        with pytest.raises(ValueError):
            simulate_crawl_policy([], policy)
        with pytest.raises(ValueError):
            simulate_crawl_policy([0.1], policy, n_cycles=0)
        with pytest.raises(ValueError):
            simulate_crawl_policy([-0.1], policy)


class TestSimulateRevisitAllocation:
    def test_matches_analytic_per_page_formula(self):
        rates = [0.1] * 200
        intervals = [5.0] * 200
        result = simulate_revisit_allocation(rates, intervals, duration_days=200.0, seed=3)
        from repro.freshness.analytic import expected_freshness_periodic

        assert result.mean_freshness == pytest.approx(
            expected_freshness_periodic(0.1, 5.0), abs=0.05
        )

    def test_optimal_allocation_beats_uniform_in_simulation(self):
        from repro.freshness.optimal_allocation import (
            optimal_revisit_frequencies,
            uniform_revisit_frequencies,
        )

        rates = [2.0] * 30 + [0.1] * 50 + [0.01] * 120
        budget = 20.0
        uniform = uniform_revisit_frequencies(rates, budget)
        optimal = optimal_revisit_frequencies(rates, budget)
        to_intervals = lambda freqs: [1.0 / f if f > 0 else float("inf") for f in freqs]
        uniform_result = simulate_revisit_allocation(
            rates, to_intervals(uniform), duration_days=300.0, seed=4
        )
        optimal_result = simulate_revisit_allocation(
            rates, to_intervals(optimal), duration_days=300.0, seed=4
        )
        assert optimal_result.mean_freshness > uniform_result.mean_freshness

    def test_infinite_interval_pages_stay_stale(self):
        rates = [1.0] * 20
        intervals = [float("inf")] * 20
        result = simulate_revisit_allocation(
            rates, intervals, duration_days=100.0, warmup_days=10.0, seed=6
        )
        assert result.mean_freshness < 0.1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            simulate_revisit_allocation([0.1], [1.0, 2.0])
        with pytest.raises(ValueError):
            simulate_revisit_allocation([], [])
        with pytest.raises(ValueError):
            simulate_revisit_allocation([0.1], [1.0], duration_days=0.0)


class TestScenarios:
    def test_table2_scenario_rate(self):
        assert table2_scenario_rate() == pytest.approx(1.0 / 120.0)

    def test_figure8_policies_are_shadowing(self):
        for policy in figure8_policies().values():
            assert policy.update_mode is UpdateMode.SHADOW

    def test_figure7_policies_are_inplace(self):
        for policy in figure7_policies().values():
            assert policy.update_mode is UpdateMode.IN_PLACE

    def test_paper_policies_cover_all_four_combinations(self):
        policies = paper_table2_policies()
        combos = {(p.crawl_mode, p.update_mode) for p in policies.values()}
        assert len(combos) == 4
