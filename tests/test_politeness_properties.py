"""Property-based politeness invariants (tentpole satellite).

Whatever the site layout, delay, window shape or request pattern, the
politeness engine must never let two same-site fetches go out closer than
the minimum delay, never start a fetch outside the night window, and the
batch resolution must equal the scalar recurrence bit-for-bit. The
hypothesis strategies sweep random configurations; a seeded crawler-level
fuzz then checks the same invariants on fetch instants committed by the
full batched crawl engine.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fetch.politeness import NightWindow, PolitenessPolicy

# Window shapes: include the paper's window, awkward non-binary fractions
# and tiny windows. Floats are rounded so shrinking stays readable.
window_shapes = st.one_of(
    st.none(),
    st.tuples(
        st.floats(min_value=0.0, max_value=0.99, allow_nan=False).map(
            lambda x: round(x, 3)
        ),
        st.floats(min_value=0.01, max_value=1.0, allow_nan=False).map(
            lambda x: round(x, 3)
        ),
    ),
)

request_patterns = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),  # site index
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    ),
    min_size=1,
    max_size=60,
)


def _build(delay_seconds, shape):
    window = None
    if shape is not None:
        start, duration = shape
        window = NightWindow(start_fraction=start, duration_fraction=duration)
    return PolitenessPolicy(min_delay_seconds=delay_seconds, night_window=window)


def _scalar_fold(policy, sites, times):
    starts = []
    for site, t in zip(sites, times):
        start = policy.earliest_allowed(site, t)
        policy.record_request(site, start)
        starts.append(start)
    return starts


class TestPolicyProperties:
    @settings(max_examples=200, deadline=None)
    @given(
        delay=st.floats(min_value=0.0, max_value=7200.0, allow_nan=False),
        shape=window_shapes,
        pattern=request_patterns,
    )
    def test_batch_equals_scalar_fold_exactly(self, delay, shape, pattern):
        sites = [f"site{s}" for s, _ in pattern]
        times = sorted(t for _, t in pattern)
        batch_policy = _build(delay, shape)
        scalar_policy = _build(delay, shape)
        batch = batch_policy.earliest_allowed_many(sites, times)
        batch_policy.record_requests(sites, batch)
        scalar = _scalar_fold(scalar_policy, sites, times)
        assert batch.tolist() == scalar
        assert batch_policy._last_request == scalar_policy._last_request

    @settings(max_examples=200, deadline=None)
    @given(
        delay=st.floats(min_value=0.0, max_value=7200.0, allow_nan=False),
        shape=window_shapes,
        pattern=request_patterns,
    )
    def test_min_delay_and_window_always_respected(self, delay, shape, pattern):
        sites = [f"site{s}" for s, _ in pattern]
        times = sorted(t for _, t in pattern)
        policy = _build(delay, shape)
        starts = policy.earliest_allowed_many(sites, times)
        policy.record_requests(sites, starts)
        window = policy.night_window
        by_site = {}
        for site, t, start in zip(sites, times, starts.tolist()):
            assert start >= t  # never scheduled into the past
            if window is not None:
                assert window.is_open(start)
            previous = by_site.get(site)
            if previous is not None:
                # Exact float comparison: start is produced by the same
                # `previous + delay` arithmetic, so no tolerance needed.
                assert start >= previous + policy.min_delay_days
            by_site[site] = start

    @settings(max_examples=300, deadline=None)
    @given(
        start=st.floats(min_value=0.0, max_value=0.999, allow_nan=False),
        duration=st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
        t=st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    )
    def test_next_open_lands_open(self, start, duration, t):
        window = NightWindow(start_fraction=start, duration_fraction=duration)
        snapped = window.next_open(t)
        assert snapped >= t
        assert window.is_open(snapped)

    @settings(max_examples=100, deadline=None)
    @given(
        start=st.floats(min_value=0.0, max_value=0.999, allow_nan=False),
        duration=st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
        times=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=50,
        ),
    )
    def test_array_window_ops_match_scalar(self, start, duration, times):
        window = NightWindow(start_fraction=start, duration_fraction=duration)
        arr = np.asarray(times, dtype=float)
        open_batch = window.is_open_array(arr)
        next_batch = window.next_open_array(arr)
        for t, open_b, next_b in zip(times, open_batch.tolist(), next_batch.tolist()):
            assert open_b == window.is_open(t)
            assert next_b == window.next_open(t)


class RecordingPolicy(PolitenessPolicy):
    """Politeness policy that logs every committed (site, start) pair."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.committed = []

    def record_request(self, site_id, t):
        self.committed.append((site_id, float(t)))
        super().record_request(site_id, t)

    def record_requests(self, site_ids, starts):
        for site_id, start in zip(site_ids, starts):
            if site_id is not None:
                self.committed.append((site_id, float(start)))
        super().record_requests(site_ids, starts)

    def record_requests_indexed(self, site_indices, starts):
        names = self._dense_names
        for site_pos, start in zip(site_indices.tolist(), starts.tolist()):
            if site_pos >= 0:
                self.committed.append((names[site_pos], float(start)))
        super().record_requests_indexed(site_indices, starts)


@pytest.mark.parametrize("seed", [3, 23])
@pytest.mark.parametrize(
    "delay_seconds,night",
    [(1800.0, False), (0.0, True), (1800.0, True)],
)
def test_batched_crawl_respects_politeness(seed, delay_seconds, night, monkeypatch):
    """Crawler-level fuzz: every fetch instant the batched engine commits
    honours the per-site delay and the night window."""
    from repro.core.incremental_crawler import (
        IncrementalCrawler,
        IncrementalCrawlerConfig,
    )
    from repro.simweb.generator import WebGeneratorConfig, generate_web

    config = IncrementalCrawlerConfig(
        collection_capacity=60,
        crawl_budget_per_day=250.0,
        engine="batched",
        track_quality=False,
        use_politeness=True,
        politeness_min_delay_seconds=delay_seconds,
        politeness_night_window=night,
    )
    recorder = RecordingPolicy(
        min_delay_seconds=delay_seconds,
        night_window=NightWindow() if night else None,
    )
    monkeypatch.setattr(
        IncrementalCrawlerConfig, "build_politeness", lambda self: recorder
    )
    web = generate_web(
        WebGeneratorConfig(
            site_scale=0.04,
            pages_per_site=10,
            horizon_days=40.0,
            new_page_fraction=0.25,
            seed=seed,
        )
    )
    crawler = IncrementalCrawler(web, config)
    result = crawler.run(8.0)
    assert result.pages_crawled > 0
    assert recorder.committed

    window = recorder.night_window
    last_by_site = {}
    for site, start in recorder.committed:
        if window is not None:
            assert window.is_open(start)
        previous = last_by_site.get(site)
        if previous is not None and recorder.min_delay_days > 0:
            # Commits arrive in fetch order, so this also pins that the
            # engine never commits a same-site fetch out of order.
            assert start >= previous + recorder.min_delay_days
        last_by_site[site] = start
