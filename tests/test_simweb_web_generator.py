"""Tests for repro.simweb.web, repro.simweb.linkgraph and repro.simweb.generator."""

import numpy as np
import pytest

from repro.simweb.domains import DOMAIN_PROFILES
from repro.simweb.generator import WebGeneratorConfig, generate_web
from repro.simweb.linkgraph import (
    LinkGraphConfig,
    generate_cross_links,
    generate_site_links,
    page_link_graph,
)
from repro.simweb.page import SimulatedPage
from repro.simweb.site import SimulatedSite
from repro.simweb.web import SimulatedWeb
from tests.test_simweb_page_site import make_page


class TestLinkGraphConfig:
    def test_defaults_valid(self):
        LinkGraphConfig()

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            LinkGraphConfig(branching_factor=0)
        with pytest.raises(ValueError):
            LinkGraphConfig(shortcut_links_per_page=-1)
        with pytest.raises(ValueError):
            LinkGraphConfig(cross_links_per_site=-1)
        with pytest.raises(ValueError):
            LinkGraphConfig(preferential_attachment_bias=-0.1)


class TestGenerateSiteLinks:
    def test_all_pages_reachable_from_root(self, rng):
        pages = [make_page(url=f"http://s.com/p{i}", depth=0 if i == 0 else 1, seed=i)
                 for i in range(20)]
        generate_site_links(pages, LinkGraphConfig(), rng)
        reachable = {pages[0].url}
        frontier = [pages[0]]
        by_url = {p.url: p for p in pages}
        while frontier:
            page = frontier.pop()
            for link in page.outlinks:
                if link in by_url and link not in reachable:
                    reachable.add(link)
                    frontier.append(by_url[link])
        assert reachable == {p.url for p in pages}

    def test_depths_assigned(self, rng):
        pages = [make_page(url=f"http://s.com/p{i}", seed=i) for i in range(10)]
        generate_site_links(pages, LinkGraphConfig(), rng)
        assert pages[0].depth == 1  # unchanged root depth from make_page default
        assert all(p.depth >= 1 for p in pages[1:])

    def test_empty_page_list_is_noop(self, rng):
        generate_site_links([], LinkGraphConfig(), rng)


class TestGenerateCrossLinks:
    def _make_sites(self, n_sites=6, pages_per_site=5):
        sites = []
        for s in range(n_sites):
            site_id = f"site{s}.com"
            site = SimulatedSite(site_id, "com", window_size=pages_per_site)
            root = make_page(url=f"http://{site_id}/", depth=0, site_id=site_id, seed=s)
            site.add_page(root, is_root=True)
            for i in range(pages_per_site - 1):
                page = make_page(
                    url=f"http://{site_id}/p{i}", site_id=site_id, seed=100 * s + i
                )
                root.add_outlink(page.url)
                site.add_page(page)
            sites.append(site)
        return sites

    def test_cross_links_created(self, rng):
        sites = self._make_sites()
        in_degree = generate_cross_links(sites, LinkGraphConfig(cross_links_per_site=5), rng)
        assert sum(in_degree.values()) > 0

    def test_links_point_to_root_pages(self, rng):
        sites = self._make_sites()
        generate_cross_links(sites, LinkGraphConfig(cross_links_per_site=5), rng)
        roots = {site.root_url for site in sites}
        for site in sites:
            for page in site.all_pages:
                for link in page.outlinks:
                    if site.site_id not in link:
                        assert link in roots

    def test_single_site_no_links(self, rng):
        sites = self._make_sites(n_sites=1)
        in_degree = generate_cross_links(sites, LinkGraphConfig(), rng)
        assert in_degree == {sites[0].site_id: 0}

    def test_zero_cross_links(self, rng):
        sites = self._make_sites()
        in_degree = generate_cross_links(
            sites, LinkGraphConfig(cross_links_per_site=0), rng
        )
        assert all(v == 0 for v in in_degree.values())


class TestPageLinkGraph:
    def test_restricts_to_given_pages(self):
        a = make_page(url="http://s.com/a")
        b = make_page(url="http://s.com/b")
        a.set_outlinks([b.url, "http://elsewhere.com/"])
        graph = page_link_graph([a, b])
        assert graph[a.url] == (b.url,)
        assert graph[b.url] == ()


class TestSimulatedWeb:
    def test_lookup_and_membership(self, small_web):
        url = next(iter(small_web.urls()))
        assert url in small_web
        assert small_web.page(url).url == url

    def test_seed_urls_are_roots(self, small_web):
        seeds = small_web.seed_urls()
        assert len(seeds) == small_web.n_sites
        assert all(small_web.page(url).depth == 0 for url in seeds)

    def test_snapshot_of_live_page(self, small_web):
        url = small_web.seed_urls()[0]
        snapshot = small_web.snapshot(url, 1.0)
        assert snapshot is not None
        assert snapshot.url == url

    def test_snapshot_of_unknown_url(self, small_web):
        assert small_web.snapshot("http://unknown/", 1.0) is None

    def test_is_up_to_date(self, small_web):
        url = small_web.seed_urls()[0]
        version = small_web.current_version(url, 1.0)
        assert small_web.is_up_to_date(url, version, 1.0)

    def test_stale_version_not_up_to_date(self, small_web):
        # Find a page that changes at least once.
        for page in small_web.pages():
            times = page.change_process.change_times()
            if times and page.created_at == 0.0 and page.exists_at(times[0] + 1.0):
                t_before = times[0] - 1e-6 + page.created_at
                t_after = times[0] + 1e-6 + page.created_at
                version_before = small_web.current_version(page.url, t_before)
                assert not small_web.is_up_to_date(page.url, version_before, t_after)
                return
        pytest.skip("no changing page found in the small web")

    def test_time_bounds_enforced(self, small_web):
        url = small_web.seed_urls()[0]
        with pytest.raises(ValueError):
            small_web.snapshot(url, -1.0)
        with pytest.raises(ValueError):
            small_web.snapshot(url, small_web.horizon_days + 10.0)

    def test_duplicate_site_rejected(self, small_web):
        with pytest.raises(ValueError):
            small_web.add_site(small_web.sites[0])

    def test_live_urls_subset_of_all(self, small_web):
        live = set(small_web.live_urls_at(1.0))
        assert live <= set(small_web.urls())

    def test_mean_change_rate_positive(self, small_web):
        assert small_web.mean_change_rate() > 0.0

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            SimulatedWeb(horizon_days=0.0)


class TestWebGeneratorConfig:
    def test_defaults_valid(self):
        WebGeneratorConfig()

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            WebGeneratorConfig(site_scale=0.0)
        with pytest.raises(ValueError):
            WebGeneratorConfig(pages_per_site=0)
        with pytest.raises(ValueError):
            WebGeneratorConfig(horizon_days=0.0)
        with pytest.raises(ValueError):
            WebGeneratorConfig(new_page_fraction=-0.1)
        with pytest.raises(ValueError):
            WebGeneratorConfig(window_size=0)

    def test_effective_window_defaults_to_pages_per_site(self):
        config = WebGeneratorConfig(pages_per_site=40)
        assert config.effective_window_size() == 40

    def test_explicit_site_counts(self):
        config = WebGeneratorConfig(site_counts={"com": 3, "edu": 1})
        assert config.sites_for_domain("com") == 3
        assert config.sites_for_domain("gov") == 0

    def test_scaled_site_counts(self):
        config = WebGeneratorConfig(site_scale=0.1)
        assert config.sites_for_domain("com") == round(132 * 0.1)


class TestGenerateWeb:
    def test_deterministic_given_seed(self):
        config = WebGeneratorConfig(site_scale=0.03, pages_per_site=10, seed=5)
        first = generate_web(config)
        second = generate_web(config)
        assert sorted(first.urls()) == sorted(second.urls())

    def test_domain_mix_follows_table1_proportions(self, small_web):
        counts = {
            domain: len(small_web.sites_in_domain(domain))
            for domain in ("com", "edu", "netorg", "gov")
        }
        assert counts["com"] > counts["edu"] > counts["gov"] >= 1
        assert counts["netorg"] >= 1

    def test_every_site_has_a_root(self, small_web):
        for site in small_web.sites:
            assert site.root_url in site

    def test_pages_created_during_horizon_exist(self, small_web):
        late = [p for p in small_web.pages() if p.created_at > 0]
        assert late, "the generator should create pages during the experiment"

    def test_change_processes_materialised(self, small_web):
        assert all(p.change_process.is_materialised for p in small_web.pages())

    def test_com_pages_change_faster_than_gov(self, small_web):
        def mean_rate(domain):
            pages = [
                p for p in small_web.pages() if p.domain == domain
            ]
            return np.mean([p.change_process.mean_rate for p in pages])

        assert mean_rate("com") > 3 * mean_rate("gov")

    def test_cross_site_links_exist(self, small_web):
        roots = set(small_web.seed_urls())
        cross = 0
        for page in small_web.pages():
            for link in page.outlinks:
                if link in roots and not link.startswith(f"http://{page.site_id}"):
                    cross += 1
        assert cross > 0
