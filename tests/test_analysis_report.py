"""Tests for repro.analysis.report."""

import pytest

from repro.analysis.report import (
    format_bar_chart,
    format_comparison,
    format_series,
    format_table,
)


class TestFormatTable:
    def test_contains_headers_and_values(self):
        text = format_table(["a", "b"], [[1, 2], [3, 4]])
        assert "a" in text and "b" in text
        assert "1" in text and "4" in text

    def test_title_is_prepended(self):
        text = format_table(["x"], [[1]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_floats_are_compacted(self):
        text = format_table(["v"], [[0.123456789]])
        assert "0.1235" in text

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestFormatBarChart:
    def test_bars_scale_with_values(self):
        text = format_bar_chart({"small": 1.0, "large": 10.0}, width=10)
        lines = {line.split()[0]: line for line in text.splitlines()}
        assert lines["large"].count("#") > lines["small"].count("#")

    def test_zero_values_have_no_bar(self):
        text = format_bar_chart({"zero": 0.0, "one": 1.0})
        zero_line = [line for line in text.splitlines() if line.startswith("zero")][0]
        assert "#" not in zero_line

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            format_bar_chart({"bad": -1.0})

    def test_empty_returns_title(self):
        assert format_bar_chart({}, title="nothing") == "nothing"

    def test_title_included(self):
        text = format_bar_chart({"a": 1.0}, title="Figure 2")
        assert text.splitlines()[0] == "Figure 2"


class TestFormatSeries:
    def test_short_series_prints_every_point(self):
        text = format_series([1, 2, 3], [4, 5, 6])
        assert text.count("\n") >= 4  # header + separator + 3 rows

    def test_long_series_is_downsampled(self):
        xs = list(range(1000))
        ys = list(range(1000))
        text = format_series(xs, ys, max_points=20)
        assert len(text.splitlines()) <= 25

    def test_final_point_always_kept(self):
        xs = list(range(100))
        ys = [x * 2 for x in xs]
        text = format_series(xs, ys, max_points=10)
        assert "198" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_series([1, 2], [1])

    def test_empty_series_returns_title(self):
        assert format_series([], [], title="empty") == "empty"


class TestFormatComparison:
    def test_three_columns(self):
        text = format_comparison([["freshness", 0.88, 0.884]])
        assert "quantity" in text and "paper" in text and "measured" in text
        assert "0.88" in text
