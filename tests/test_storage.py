"""Tests for the storage substrate: records, repository, collections, index."""

import pytest

from repro.storage.collection import InPlaceCollection, ShadowCollection
from repro.storage.inverted_index import InvertedIndex, tokenize
from repro.storage.records import PageRecord
from repro.storage.repository import Repository, RepositoryFullError


def make_record(url="http://s.com/p", checksum="abc", fetched_at=1.0, importance=0.0):
    return PageRecord(
        url=url,
        content=f"content of {url}",
        checksum=checksum,
        fetched_at=fetched_at,
        first_fetched_at=fetched_at,
        outlinks=("http://s.com/other",),
        importance=importance,
    )


class TestPageRecord:
    def test_refreshed_detects_change(self):
        record = make_record(checksum="v1")
        refreshed = record.refreshed("new", "v2", fetched_at=2.0, outlinks=())
        assert refreshed.change_count == 1
        assert refreshed.visit_count == 2
        assert refreshed.checksum == "v2"

    def test_refreshed_without_change(self):
        record = make_record(checksum="v1")
        refreshed = record.refreshed("same", "v1", fetched_at=2.0, outlinks=())
        assert refreshed.change_count == 0
        assert refreshed.visit_count == 2

    def test_refresh_preserves_first_fetch(self):
        record = make_record(fetched_at=1.0)
        refreshed = record.refreshed("x", "y", fetched_at=5.0, outlinks=())
        assert refreshed.first_fetched_at == 1.0
        assert refreshed.observation_span() == pytest.approx(4.0)

    def test_refresh_backwards_in_time_rejected(self):
        record = make_record(fetched_at=5.0)
        with pytest.raises(ValueError):
            record.refreshed("x", "y", fetched_at=1.0, outlinks=())

    def test_with_importance(self):
        record = make_record()
        assert record.with_importance(0.7).importance == 0.7

    def test_observed_change_fraction(self):
        record = make_record(checksum="a")
        record = record.refreshed("b", "b", 2.0, ())
        record = record.refreshed("b", "b", 3.0, ())
        assert record.observed_change_fraction == pytest.approx(1 / 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            PageRecord("u", "c", "x", fetched_at=-1.0, first_fetched_at=0.0)
        with pytest.raises(ValueError):
            PageRecord("u", "c", "x", fetched_at=0.0, first_fetched_at=1.0)
        with pytest.raises(ValueError):
            PageRecord("u", "c", "x", fetched_at=1.0, first_fetched_at=1.0, visit_count=0)
        with pytest.raises(ValueError):
            PageRecord(
                "u", "c", "x", fetched_at=1.0, first_fetched_at=1.0,
                visit_count=1, change_count=2,
            )


class TestRepository:
    def test_save_get_discard(self):
        repo = Repository()
        record = make_record()
        repo.save(record)
        assert record.url in repo
        assert repo.get(record.url) is record
        discarded = repo.discard(record.url)
        assert discarded is record
        assert record.url not in repo

    def test_save_duplicate_rejected(self):
        repo = Repository()
        repo.save(make_record())
        with pytest.raises(ValueError):
            repo.save(make_record())

    def test_update_requires_existing(self):
        repo = Repository()
        with pytest.raises(KeyError):
            repo.update(make_record())

    def test_capacity_enforced(self):
        repo = Repository(capacity=2)
        repo.save(make_record(url="http://a/"))
        repo.save(make_record(url="http://b/"))
        assert repo.is_full
        with pytest.raises(RepositoryFullError):
            repo.save(make_record(url="http://c/"))

    def test_update_allowed_at_capacity(self):
        repo = Repository(capacity=1)
        repo.save(make_record(url="http://a/", checksum="1"))
        repo.update(make_record(url="http://a/", checksum="2"))
        assert repo.require("http://a/").checksum == "2"

    def test_lowest_importance_url(self):
        repo = Repository()
        repo.save(make_record(url="http://a/", importance=0.9))
        repo.save(make_record(url="http://b/", importance=0.1))
        repo.save(make_record(url="http://c/", importance=0.5))
        assert repo.lowest_importance_url() == "http://b/"

    def test_lowest_importance_empty(self):
        assert Repository().lowest_importance_url() is None

    def test_mean_importance(self):
        repo = Repository()
        repo.save(make_record(url="http://a/", importance=0.2))
        repo.save(make_record(url="http://b/", importance=0.4))
        assert repo.mean_importance() == pytest.approx(0.3)

    def test_total_visits(self):
        repo = Repository()
        record = make_record().refreshed("x", "y", 2.0, ())
        repo.save(record)
        assert repo.total_visits() == 2

    def test_clear(self):
        repo = Repository()
        repo.save(make_record())
        repo.clear()
        assert len(repo) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Repository(capacity=0)


class TestInPlaceCollection:
    def test_store_is_immediately_visible(self):
        collection = InPlaceCollection()
        collection.store(make_record())
        assert len(collection.current_records()) == 1

    def test_refresh_replaces_record(self):
        collection = InPlaceCollection()
        collection.store(make_record(checksum="v1"))
        collection.store(make_record(checksum="v2"))
        assert collection.current_records()[0].checksum == "v2"

    def test_discard(self):
        collection = InPlaceCollection()
        record = make_record()
        collection.store(record)
        assert collection.discard(record.url) is not None
        assert collection.current_records() == []

    def test_discard_missing_returns_none(self):
        assert InPlaceCollection().discard("http://x/") is None

    def test_complete_cycle_is_noop(self):
        collection = InPlaceCollection()
        collection.store(make_record())
        collection.complete_cycle(at=10.0)
        assert len(collection.current_records()) == 1

    def test_working_equals_current(self):
        collection = InPlaceCollection()
        collection.store(make_record())
        assert [r.url for r in collection.working_records()] == [
            r.url for r in collection.current_records()
        ]


class TestShadowCollection:
    def test_store_not_visible_before_swap(self):
        collection = ShadowCollection()
        collection.store(make_record())
        assert collection.current_records() == []
        assert len(collection.working_records()) == 1

    def test_swap_makes_records_visible(self):
        collection = ShadowCollection()
        collection.store(make_record())
        collection.complete_cycle(at=5.0)
        assert len(collection.current_records()) == 1
        assert collection.swap_times == [5.0]

    def test_shadow_cleared_after_swap(self):
        collection = ShadowCollection()
        collection.store(make_record())
        collection.complete_cycle(at=5.0)
        assert collection.working_records() == []

    def test_current_survives_next_cycle_until_swap(self):
        collection = ShadowCollection()
        collection.store(make_record(url="http://old/"))
        collection.complete_cycle(at=5.0)
        collection.store(make_record(url="http://new/"))
        current_urls = [r.url for r in collection.current_records()]
        assert current_urls == ["http://old/"]
        collection.complete_cycle(at=10.0)
        current_urls = [r.url for r in collection.current_records()]
        assert current_urls == ["http://new/"]

    def test_get_working(self):
        collection = ShadowCollection()
        record = make_record()
        collection.store(record)
        assert collection.get_working(record.url) is record
        assert collection.get_working("http://other/") is None


class TestTokenizer:
    def test_lowercases_and_splits(self):
        assert tokenize("Hello World-42") == ["hello", "world", "42"]

    def test_empty(self):
        assert tokenize("") == []


class TestInvertedIndex:
    def test_add_and_search(self):
        index = InvertedIndex()
        index.add_document("d1", "incremental crawler freshness")
        index.add_document("d2", "batch crawler shadowing")
        results = index.search("crawler")
        assert {doc for doc, _ in results} == {"d1", "d2"}

    def test_ranking_prefers_denser_document(self):
        index = InvertedIndex()
        index.add_document("dense", "cats cats cats")
        index.add_document("sparse", "cats and dogs and birds and fish")
        results = index.search("cats")
        assert results[0][0] == "dense"

    def test_reindex_replaces_old_content(self):
        index = InvertedIndex()
        index.add_document("d1", "old topic")
        index.add_document("d1", "new subject")
        assert index.search("old") == []
        assert [doc for doc, _ in index.search("subject")] == ["d1"]

    def test_remove_document(self):
        index = InvertedIndex()
        index.add_document("d1", "something here")
        assert index.remove_document("d1")
        assert not index.remove_document("d1")
        assert index.search("something") == []
        assert index.n_documents == 0

    def test_document_frequency(self):
        index = InvertedIndex()
        index.add_document("d1", "apple banana")
        index.add_document("d2", "apple")
        assert index.document_frequency("apple") == 2
        assert index.document_frequency("banana") == 1
        assert index.document_frequency("missing") == 0

    def test_build_from_documents(self):
        index = InvertedIndex.build([("a", "one two"), ("b", "two three")])
        assert index.n_documents == 2
        assert index.document_frequency("two") == 2

    def test_search_limit(self):
        index = InvertedIndex()
        for i in range(20):
            index.add_document(f"d{i}", "common term")
        assert len(index.search("common", limit=5)) == 5
        assert len(index.search("common", limit=None)) == 20

    def test_empty_query(self):
        index = InvertedIndex()
        index.add_document("d1", "text")
        assert index.search("") == []

    def test_clear(self):
        index = InvertedIndex()
        index.add_document("d1", "text")
        index.clear()
        assert index.n_documents == 0
        assert index.n_terms == 0
