"""Parity suite: vectorized hot paths vs. the retained reference loops.

Every vectorized kernel introduced by the NumPy-batched engine — the
crawl-policy simulators, the batched web oracle, the collection metrics and
the optimal-allocation solver — must reproduce the pure-Python reference
implementation to within 1e-9 on shared seeds (the simulators share the
random stream with their references, so they are expected to match
*exactly*). Edge cases covered: rate-0 pages, infinite revisit intervals,
and the first (incomplete) cycle of a shadowing crawler.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.freshness.analytic import CrawlMode, CrawlPolicy, UpdateMode
from repro.freshness.metrics import (
    collection_age,
    collection_age_reference,
    collection_freshness,
    collection_freshness_reference,
)
from repro.freshness.optimal_allocation import (
    marginal_freshness,
    optimal_frequency_curve,
    optimal_revisit_frequencies,
    optimal_revisit_frequencies_reference,
)
from repro.simulation.crawler_sim import (
    simulate_crawl_policy,
    simulate_crawl_policy_reference,
    simulate_revisit_allocation,
    simulate_revisit_allocation_reference,
)
from repro.simulation.scenarios import paper_table2_policies
from repro.storage.records import PageRecord

TOLERANCE = 1e-9


def _mixed_rates(n: int, seed: int = 77) -> np.ndarray:
    """A population with static, slow, typical and pathological pages."""
    rng = np.random.default_rng(seed)
    rates = rng.exponential(0.15, size=n)
    rates[: n // 10] = 0.0  # static pages
    rates[n // 10 : n // 8] = 25.0  # change many times a day
    return rates


class TestSimulatorParity:
    @pytest.mark.parametrize("label", sorted(paper_table2_policies()))
    def test_crawl_policy_matches_reference(self, label):
        policy = paper_table2_policies()[label]
        rates = _mixed_rates(150)
        vec = simulate_crawl_policy(rates, policy, n_cycles=3, samples_per_cycle=15, seed=21)
        ref = simulate_crawl_policy_reference(
            rates, policy, n_cycles=3, samples_per_cycle=15, seed=21
        )
        assert vec.times == ref.times
        np.testing.assert_allclose(vec.freshness, ref.freshness, atol=TOLERANCE)
        assert vec.mean_freshness == pytest.approx(ref.mean_freshness, abs=TOLERANCE)

    def test_shadowing_first_cycle_visibility(self):
        """With the minimum warm-up, early samples of a shadowing crawler see
        pages whose previous-cycle copy does not exist yet; the visibility
        masking must agree with the reference's ``None`` handling."""
        policy = CrawlPolicy(
            crawl_mode=CrawlMode.BATCH,
            update_mode=UpdateMode.SHADOW,
            cycle_days=30.0,
            batch_duration_days=10.0,
        )
        rates = _mixed_rates(80)
        vec = simulate_crawl_policy(rates, policy, n_cycles=2, warmup_cycles=1, seed=5)
        ref = simulate_crawl_policy_reference(
            rates, policy, n_cycles=2, warmup_cycles=1, seed=5
        )
        np.testing.assert_allclose(vec.freshness, ref.freshness, atol=TOLERANCE)

    def test_revisit_allocation_matches_reference(self):
        rng = np.random.default_rng(9)
        rates = _mixed_rates(200)
        intervals = rng.exponential(12.0, size=200)
        intervals[:7] = np.inf  # never revisited after the initial fetch
        intervals[7:10] = 0.0  # no schedule at all
        vec = simulate_revisit_allocation(
            rates, intervals, duration_days=90.0, n_samples=180, seed=13
        )
        ref = simulate_revisit_allocation_reference(
            rates, intervals, duration_days=90.0, n_samples=180, seed=13
        )
        assert vec.times == ref.times
        np.testing.assert_allclose(vec.freshness, ref.freshness, atol=TOLERANCE)
        assert vec.mean_freshness == pytest.approx(ref.mean_freshness, abs=TOLERANCE)

    def test_all_static_population(self):
        policy = paper_table2_policies()["steady / in-place"]
        vec = simulate_crawl_policy([0.0] * 25, policy, n_cycles=2, seed=1)
        ref = simulate_crawl_policy_reference([0.0] * 25, policy, n_cycles=2, seed=1)
        assert vec.freshness == ref.freshness
        assert vec.mean_freshness == pytest.approx(1.0)

    def test_ndarray_rates_accepted(self):
        """Regression: NumPy-array inputs used to crash on ``if not rates:``."""
        policy = paper_table2_policies()["steady / in-place"]
        rates = np.array([0.05, 0.1, 0.0])
        result = simulate_crawl_policy(rates, policy, n_cycles=2, seed=3)
        assert len(result.freshness) > 0
        alloc = simulate_revisit_allocation(
            rates, np.array([5.0, np.inf, 2.0]), duration_days=20.0, n_samples=10, seed=3
        )
        assert len(alloc.freshness) == 10
        reference = simulate_revisit_allocation_reference(
            rates, np.array([5.0, np.inf, 2.0]), duration_days=20.0, n_samples=10, seed=3
        )
        np.testing.assert_allclose(alloc.freshness, reference.freshness, atol=TOLERANCE)

    def test_empty_rates_still_rejected(self):
        policy = paper_table2_policies()["steady / in-place"]
        for bad in ([], np.array([])):
            with pytest.raises(ValueError):
                simulate_crawl_policy(bad, policy)
            with pytest.raises(ValueError):
                simulate_revisit_allocation(bad, bad)


class TestOracleParity:
    @pytest.fixture(scope="class")
    def records(self, small_web):
        rng = np.random.default_rng(23)
        records = []
        for url in list(small_web.urls())[:400]:
            fetched = float(rng.uniform(0.0, small_web.horizon_days * 0.8))
            records.append(
                PageRecord(
                    url=url, content="x", checksum="c",
                    fetched_at=fetched, first_fetched_at=fetched,
                )
            )
        # Records whose pages the web has never heard of.
        for k in range(4):
            records.append(
                PageRecord(
                    url=f"http://gone.example/{k}", content="x", checksum="c",
                    fetched_at=5.0, first_fetched_at=5.0,
                )
            )
        return records

    @pytest.mark.parametrize("at", [0.0, 1.5, 40.0, 100.0, 126.5])
    def test_collection_freshness_matches_reference(self, small_web, records, at):
        vec = collection_freshness(records, small_web, at)
        ref = collection_freshness_reference(records, small_web, at)
        assert vec == pytest.approx(ref, abs=TOLERANCE)

    @pytest.mark.parametrize("at", [0.0, 1.5, 40.0, 100.0, 126.5])
    def test_collection_age_matches_reference(self, small_web, records, at):
        vec = collection_age(records, small_web, at)
        ref = collection_age_reference(records, small_web, at)
        assert vec == pytest.approx(ref, abs=TOLERANCE)

    def test_empty_collection(self, small_web):
        assert collection_freshness([], small_web, 1.0) == 0.0
        assert collection_age([], small_web, 1.0) == 0.0

    def test_versions_at_matches_scalar_oracle(self, small_web):
        urls = list(small_web.urls())[:200]
        for t in (0.0, 30.0, 126.0):
            batched = small_web.versions_at(urls, t)
            scalar = [small_web.page(url).version_at(t) for url in urls]
            assert [int(v) for v in batched] == scalar

    def test_versions_at_per_record_times(self, small_web):
        urls = list(small_web.urls())[:100]
        times = np.linspace(0.0, 120.0, len(urls))
        batched = small_web.versions_at(urls, times)
        scalar = [small_web.page(u).version_at(float(t)) for u, t in zip(urls, times)]
        assert [int(v) for v in batched] == scalar

    def test_versions_at_unknown_url_raises(self, small_web):
        with pytest.raises(KeyError):
            small_web.versions_at(["http://gone.example/zzz"], 1.0)

    def test_exists_mask_matches_scalar_oracle(self, small_web):
        urls = list(small_web.urls())[:200] + ["http://gone.example/zzz"]
        for t in (0.0, 60.0, 126.0):
            batched = small_web.exists_mask(urls, t)
            scalar = [small_web.exists(url, t) for url in urls]
            assert [bool(v) for v in batched] == scalar

    def test_up_to_date_mask_matches_scalar_oracle(self, small_web):
        urls = list(small_web.urls())[:200]
        pairs = [(url, small_web.page(url).version_at(10.0)) for url in urls]
        pairs.append(("http://gone.example/zzz", 0))
        for t in (10.0, 80.0, 126.0):
            batched = small_web.up_to_date_mask(pairs, t)
            scalar = [small_web.is_up_to_date(url, version, t) for url, version in pairs]
            assert [bool(v) for v in batched] == scalar

    def test_oracle_cache_invalidated_on_mutation(self, tiny_web):
        arrays = tiny_web.oracle_arrays()
        assert arrays is tiny_web.oracle_arrays()  # cached
        tiny_web.invalidate_oracle_cache()
        rebuilt = tiny_web.oracle_arrays()
        assert rebuilt is not arrays
        assert rebuilt.flat.shape == arrays.flat.shape


class TestAllocatorParity:
    @pytest.mark.parametrize(
        "rates,budget,weights",
        [
            (list(_mixed_rates(120)), 8.0, None),
            ([0.5] * 64, 1.0, None),  # degenerate: identical pages, tight budget
            ([0.0, 0.0, 0.3], 2.0, None),  # rate-0 pages
            ([1.0, 86400.0], 1.0, None),  # the paper's two-page example
            (list(_mixed_rates(90, seed=3)), 5.0,
             list(np.random.default_rng(4).uniform(0.0, 3.0, size=90))),
        ],
    )
    def test_matches_reference(self, rates, budget, weights):
        vec = optimal_revisit_frequencies(rates, budget, weights=weights)
        ref = optimal_revisit_frequencies_reference(rates, budget, weights=weights)
        np.testing.assert_allclose(vec, ref, atol=TOLERANCE)
        assert sum(vec) == pytest.approx(budget, rel=1e-6)

    def test_ndarray_inputs_accepted(self):
        rates = np.array([0.1, 0.5, 0.0])
        vec = optimal_revisit_frequencies(rates, 2.0, weights=np.array([1.0, 2.0, 1.0]))
        assert sum(vec) == pytest.approx(2.0)

    def test_funded_pages_share_one_water_level(self):
        rates = _mixed_rates(200, seed=11)
        frequencies = optimal_revisit_frequencies(rates, 10.0)
        marginals = [
            marginal_freshness(rate, frequency)
            for rate, frequency in zip(rates, frequencies)
            if frequency > 1e-9 and rate > 0
        ]
        assert len(marginals) > 10
        assert max(marginals) - min(marginals) < 1e-6

    def test_curve_median_water_level_is_unimodal(self):
        """Satellite fix: the Figure 9 curve recovers mu as the median
        marginal over all funded pages; the shape must stay unimodal even
        with a separate population fixing the water level."""
        population = [0.005 * (1.5 ** i) for i in range(40)]
        grid = [0.001 * (1.6 ** i) for i in range(30)]
        curve = optimal_frequency_curve(grid, budget=2.0, population_rates=population)
        peak = curve.index(max(curve))
        assert 0 < peak < len(curve) - 1
        assert all(curve[i] <= curve[i + 1] + 1e-9 for i in range(peak))
        assert all(
            curve[i] >= curve[i + 1] - 1e-9 for i in range(peak, len(curve) - 1)
        )
        assert curve[-1] < max(curve) * 0.5
