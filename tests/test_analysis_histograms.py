"""Tests for repro.analysis.histograms."""

import pytest

from repro.analysis.histograms import (
    CHANGE_INTERVAL_BUCKETS,
    DAYS_PER_4_MONTHS,
    DAYS_PER_MONTH,
    LIFESPAN_BUCKETS,
    Bucket,
    BucketedHistogram,
    change_interval_histogram,
    lifespan_histogram,
)


class TestBucket:
    def test_contains_inside(self):
        bucket = Bucket("test", 1.0, 7.0)
        assert bucket.contains(3.0)

    def test_contains_upper_edge_inclusive(self):
        bucket = Bucket("test", 1.0, 7.0)
        assert bucket.contains(7.0)

    def test_contains_lower_edge_exclusive(self):
        bucket = Bucket("test", 1.0, 7.0)
        assert not bucket.contains(1.0)

    def test_contains_outside(self):
        bucket = Bucket("test", 1.0, 7.0)
        assert not bucket.contains(10.0)

    def test_infinite_upper_bound(self):
        bucket = Bucket("tail", 120.0, float("inf"))
        assert bucket.contains(1e9)


class TestBucketDefinitions:
    def test_change_interval_buckets_match_paper_axis(self):
        labels = [b.label for b in CHANGE_INTERVAL_BUCKETS]
        assert labels == [
            "<=1day",
            ">1day,<=1week",
            ">1week,<=1month",
            ">1month,<=4months",
            ">4months",
        ]

    def test_lifespan_buckets_match_paper_axis(self):
        labels = [b.label for b in LIFESPAN_BUCKETS]
        assert labels == [
            "<=1week",
            ">1week,<=1month",
            ">1month,<=4months",
            ">4months",
        ]

    def test_buckets_are_contiguous(self):
        for buckets in (CHANGE_INTERVAL_BUCKETS, LIFESPAN_BUCKETS):
            for left, right in zip(buckets, buckets[1:]):
                assert left.upper == right.lower

    def test_month_constants(self):
        assert DAYS_PER_MONTH == 30.0
        assert DAYS_PER_4_MONTHS == 120.0


class TestBucketedHistogram:
    def test_requires_buckets(self):
        with pytest.raises(ValueError):
            BucketedHistogram([])

    def test_add_and_counts(self):
        histogram = BucketedHistogram(CHANGE_INTERVAL_BUCKETS)
        histogram.add(0.5)
        histogram.add(3.0)
        histogram.add(3.5)
        assert histogram.counts() == [1, 2, 0, 0, 0]
        assert histogram.total == 3

    def test_values_below_first_bucket_go_to_first_bucket(self):
        histogram = BucketedHistogram(CHANGE_INTERVAL_BUCKETS)
        histogram.add(0.0)
        assert histogram.counts()[0] == 1

    def test_infinite_value_goes_to_last_bucket(self):
        histogram = BucketedHistogram(CHANGE_INTERVAL_BUCKETS)
        histogram.add(float("inf"))
        assert histogram.counts()[-1] == 1

    def test_fractions_sum_to_one(self):
        histogram = BucketedHistogram(LIFESPAN_BUCKETS)
        histogram.add_many([1.0, 10.0, 45.0, 200.0, 3.0])
        assert abs(sum(histogram.fractions()) - 1.0) < 1e-12

    def test_fractions_empty(self):
        histogram = BucketedHistogram(LIFESPAN_BUCKETS)
        assert histogram.fractions() == [0.0] * 4

    def test_labelled_fractions(self):
        histogram = BucketedHistogram(LIFESPAN_BUCKETS)
        histogram.add_many([1.0, 1.0, 200.0, 200.0])
        fractions = histogram.labelled_fractions()
        assert fractions["<=1week"] == pytest.approx(0.5)
        assert fractions[">4months"] == pytest.approx(0.5)

    def test_fraction_for_unknown_label(self):
        histogram = BucketedHistogram(LIFESPAN_BUCKETS)
        with pytest.raises(KeyError):
            histogram.fraction_for("bogus")

    def test_merge(self):
        first = BucketedHistogram(LIFESPAN_BUCKETS)
        second = BucketedHistogram(LIFESPAN_BUCKETS)
        first.add(1.0)
        second.add(200.0)
        merged = first.merge(second)
        assert merged.total == 2
        assert merged.counts()[0] == 1
        assert merged.counts()[-1] == 1

    def test_merge_different_buckets_rejected(self):
        first = BucketedHistogram(LIFESPAN_BUCKETS)
        second = BucketedHistogram(CHANGE_INTERVAL_BUCKETS)
        with pytest.raises(ValueError):
            first.merge(second)

    def test_merge_does_not_mutate_operands(self):
        first = BucketedHistogram(LIFESPAN_BUCKETS)
        second = BucketedHistogram(LIFESPAN_BUCKETS)
        first.add(1.0)
        second.add(1.0)
        first.merge(second)
        assert first.total == 1
        assert second.total == 1


class TestConvenienceConstructors:
    def test_change_interval_histogram_prefilled(self):
        histogram = change_interval_histogram([0.5, 100.0])
        assert histogram.total == 2

    def test_lifespan_histogram_prefilled(self):
        histogram = lifespan_histogram([5.0, 500.0])
        assert histogram.total == 2

    def test_empty_constructors(self):
        assert change_interval_histogram().total == 0
        assert lifespan_histogram().total == 0
