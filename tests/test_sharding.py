"""Sharding primitives: partitioner properties, shard views, shared webs.

The crawler-level guarantees (``shards=1`` bit-identity, N-shard
determinism) live in ``test_sharded_crawler.py``; this module pins the
building blocks they rest on — the deterministic site partitioner, the
shard-view split arithmetic, queue partitioning, snapshot merging, state
key namespacing and the shared-memory web round trip.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.collurls import CollUrls
from repro.core.sharding import ShardView, SitePartitioner, _largest_remainder_split
from repro.core.update_module import UpdateModule
from repro.simweb.generator import WebGeneratorConfig, generate_web
from repro.simweb.shared import SharedWeb
from repro.storage.checkpoint import (
    CHECKPOINT_STATE_KEY,
    RESULT_STATE_KEY,
    namespaced_state_key,
)

site_ids = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789.-", min_size=1, max_size=30
)
shard_counts = st.integers(min_value=1, max_value=16)


@pytest.fixture(scope="module")
def tiny_web():
    return generate_web(
        WebGeneratorConfig(
            site_counts={"com": 6, "edu": 3, "gov": 2, "net": 2},
            pages_per_site=10,
            horizon_days=30.0,
            seed=23,
        )
    )


class TestSitePartitioner:
    @given(site_id=site_ids, n=shard_counts)
    def test_total(self, site_id, n):
        assert 0 <= SitePartitioner(n).shard_of(site_id) < n

    @given(site_id=site_ids, n=shard_counts)
    def test_deterministic(self, site_id, n):
        partitioner = SitePartitioner(n)
        first = partitioner.shard_of(site_id)
        assert all(partitioner.shard_of(site_id) == first for _ in range(3))
        # A fresh partitioner instance agrees too — the mapping is a pure
        # function of the site id, never of interpreter or instance state.
        assert SitePartitioner(n).shard_of(site_id) == first

    @given(ids=st.lists(site_ids, min_size=1, max_size=20), n=shard_counts)
    def test_insertion_order_independent(self, ids, n):
        partitioner = SitePartitioner(n)
        forward = partitioner.assign(ids)
        backward = partitioner.assign(list(reversed(ids)))
        assert forward == backward

    @given(site_id=site_ids)
    def test_single_shard_owns_everything(self, site_id):
        assert SitePartitioner(1).shard_of(site_id) == 0

    def test_site_affinity_through_views(self, tiny_web):
        # URLs are never partitioned directly — ownership flows through the
        # owning site, so every page of a site lands on one shard.
        views = ShardView.split(tiny_web, 3, capacity=60, budget_per_day=90.0)
        owner = {}
        for view in views:
            for site_id in view.site_ids:
                assert site_id not in owner
                owner[site_id] = view.index
        for page in tiny_web.pages():
            assert owner[page.site_id] == owner[page.site_id]  # total
        for view in views:
            for url in view.seed_urls:
                assert view.owns_site(tiny_web.page(url).site_id)

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            SitePartitioner(0)


class TestLargestRemainderSplit:
    @given(
        total=st.integers(min_value=1, max_value=10_000),
        weights=st.lists(
            st.integers(min_value=1, max_value=500), min_size=1, max_size=8
        ),
    )
    def test_sums_and_minimum(self, total, weights):
        if total < len(weights):
            total = len(weights)
        shares = _largest_remainder_split(total, weights, minimum=1)
        assert sum(shares) == total
        assert all(share >= 1 for share in shares)

    def test_proportionality(self):
        assert _largest_remainder_split(100, [3, 1]) == [75, 25]


class TestShardViewSplit:
    def test_partition_covers_web_disjointly(self, tiny_web):
        all_sites = [site.site_id for site in tiny_web.sites]
        for n in (1, 2, 4):
            views = ShardView.split(
                tiny_web, n, capacity=40, budget_per_day=120.0
            )
            seen = [s for view in views for s in view.site_ids]
            assert sorted(seen) == sorted(all_sites)
            assert len(set(seen)) == len(seen)
            assert sum(view.capacity for view in views) == 40
            assert sum(view.budget_per_day for view in views) == pytest.approx(120.0)

    def test_single_shard_is_total(self, tiny_web):
        (view,) = ShardView.split(tiny_web, 1, capacity=40, budget_per_day=50.0)
        assert view.is_total
        assert view.capacity == 40 and view.budget_per_day == 50.0
        assert list(view.seed_urls) == tiny_web.seed_urls()

    def test_seed_routing(self, tiny_web):
        views = ShardView.split(tiny_web, 4, capacity=40, budget_per_day=120.0)
        routed = [url for view in views for url in view.seed_urls]
        assert sorted(routed) == sorted(tiny_web.seed_urls())


class TestCollUrlsPartition:
    def test_entries_and_counters_preserved(self):
        queue = CollUrls()
        urls = [f"http://s{i % 3}.com/p{i}" for i in range(12)]
        for i, url in enumerate(urls):
            queue.schedule(url, float(i % 5))
        queue.schedule_front("http://s0.com/front", 0.0)

        owner_of = lambda url: (0 if "s0" in url else 1)
        parts = queue.partition(owner_of, 2)

        assert len(queue) == 13  # source untouched
        assert len(parts[0]) + len(parts[1]) == 13
        for index, part in enumerate(parts):
            for url in part.urls():
                assert owner_of(url) == index
                # Exact (time, sequence) keys survive the split.
                assert part.entry_for(url) == queue.entry_for(url)
        # Popping a partition yields its entries in original relative order.
        drained = [part.pop()[0] for part in parts for _ in range(len(part))]
        assert sorted(drained) == sorted(queue.urls())

    def test_counters_inherited(self):
        queue = CollUrls()
        queue.schedule("http://a.com/", 1.0)
        parts = queue.partition(lambda url: 0, 1)
        parts[0].schedule("http://b.com/", 1.0)
        # The new entry's sequence continues the parent's space: it cannot
        # collide with (or sort before) the preserved entry at equal time.
        assert parts[0].pop()[0] == "http://a.com/"
        assert parts[0].pop()[0] == "http://b.com/"

    def test_rejects_out_of_range_owner(self):
        queue = CollUrls()
        queue.schedule("http://a.com/", 1.0)
        with pytest.raises(ValueError):
            queue.partition(lambda url: 2, 2)


class TestMergeSnapshots:
    @staticmethod
    def _snapshot(urls, importance, processed=5):
        return {
            "histories": {url: {"events": []} for url in urls},
            "rate_estimates": {url: 0.5 for url in urls},
            "intervals": {url: 2.0 for url in urls},
            "importance": dict(importance),
            "last_reallocation": float(processed),
            "estimator": {"kind": "stub", "id": processed},
            "pages_processed": processed,
            "changes_detected": processed // 2,
        }

    def test_single_snapshot_verbatim(self):
        snap = self._snapshot(["http://a.com/"], {"http://a.com/": 1.0})
        assert UpdateModule.merge_snapshots([snap]) is snap

    def test_disjoint_union_and_counter_sums(self):
        a = self._snapshot(["http://a.com/"], {"http://a.com/": 1.0}, processed=4)
        b = self._snapshot(["http://b.com/"], {"http://b.com/": 2.0}, processed=6)
        merged = UpdateModule.merge_snapshots([a, b])
        assert set(merged["histories"]) == {"http://a.com/", "http://b.com/"}
        assert merged["pages_processed"] == 10
        assert merged["changes_detected"] == 5
        assert merged["last_reallocation"] == 6.0
        assert merged["shards"] == [a["estimator"], b["estimator"]]
        assert merged["estimator"] is None

    def test_crawled_state_collision_rejected(self):
        a = self._snapshot(["http://a.com/"], {})
        b = self._snapshot(["http://a.com/"], {})
        with pytest.raises(ValueError, match="disjoint"):
            UpdateModule.merge_snapshots([a, b])

    def test_importance_collision_first_wins(self):
        # Importance is derived from the link graph, which scores foreign
        # link targets — the same URL can carry a score in several shards.
        a = self._snapshot(["http://a.com/"], {"http://x.com/": 1.0})
        b = self._snapshot(["http://b.com/"], {"http://x.com/": 9.0})
        merged = UpdateModule.merge_snapshots([a, b])
        assert merged["importance"]["http://x.com/"] == 1.0


class TestNamespacedStateKeys:
    def test_passthrough_without_namespace(self):
        assert namespaced_state_key(None, CHECKPOINT_STATE_KEY) == "checkpoint"
        assert namespaced_state_key(None, RESULT_STATE_KEY) == "result"

    def test_qualified(self):
        assert namespaced_state_key("shard03", "checkpoint") == "shard03/checkpoint"

    def test_rejects_separator_in_namespace(self):
        with pytest.raises(ValueError):
            namespaced_state_key("a/b", "checkpoint")


class TestSharedWeb:
    def test_round_trip_bit_identical(self, tiny_web):
        oracle = tiny_web.oracle_arrays()
        with SharedWeb(tiny_web) as shared:
            rebuilt = shared.payload.materialise()
            assert rebuilt.urls() == tiny_web.urls()
            assert [s.site_id for s in rebuilt.sites] == [
                s.site_id for s in tiny_web.sites
            ]
            other = rebuilt.oracle_arrays()
            np.testing.assert_array_equal(other.flat, oracle.flat)
            np.testing.assert_array_equal(other.offsets, oracle.offsets)
            np.testing.assert_array_equal(other.created, oracle.created)
            # Zero copy: the worker-side event array is a view over the
            # shared block, not a private copy.
            assert other.flat.base is not None
            all_urls = list(tiny_web.urls())
            for at in (0.0, 7.5, 29.0):
                np.testing.assert_array_equal(
                    rebuilt.versions_at(all_urls, at),
                    tiny_web.versions_at(all_urls, at),
                )
                np.testing.assert_array_equal(
                    rebuilt.exists_mask(all_urls, at),
                    tiny_web.exists_mask(all_urls, at),
                )
            for url in list(tiny_web.urls())[:25]:
                original = tiny_web.page(url)
                copy = rebuilt.page(url)
                assert copy.outlinks == original.outlinks
                assert copy.created_at == original.created_at
                assert copy.lifespan == original.lifespan
                assert copy.content_for_version(1) == original.content_for_version(1)

    def test_payload_is_small(self, tiny_web):
        import pickle

        with SharedWeb(tiny_web) as shared:
            payload = pickle.dumps(shared.payload)
            # The bulk (change-time events) stays in shared memory; the
            # picklable part is string tables and manifests only.
            assert len(payload) < 64 * 1024
