"""Sharded-crawler guarantees: single-shard bit-identity, N-shard determinism.

The determinism contract under test:

* ``shards=1`` (inline, no processes) is bit-identical to the plain
  batched :class:`~repro.core.incremental_crawler.IncrementalCrawler` —
  series, counters, estimator snapshot and per-record fetch timestamps.
* For fixed ``(web, config, shards)`` the merged result is reproducible
  regardless of the worker count: worker scheduling must never leak into
  results.
* The same holds through the spec layer (``engine="sharded"``) and the
  parallel matrix runner (``run_matrix(workers=N)`` equals serial).
"""

import pytest

from repro.api.runner import ScenarioMatrix, run, run_matrix
from repro.api.specs import CrawlerSpec, ExperimentSpec, WebSpec
from repro.core.incremental_crawler import IncrementalCrawler, IncrementalCrawlerConfig
from repro.core.sharded_crawler import ShardedCrawler
from repro.simweb.generator import WebGeneratorConfig, generate_web
from repro.storage.records import record_to_dict


@pytest.fixture(scope="module")
def shard_web():
    return generate_web(
        WebGeneratorConfig(
            site_counts={"com": 8, "edu": 4, "gov": 3, "net": 3},
            pages_per_site=12,
            horizon_days=30.0,
            seed=31,
        )
    )


def _config(**overrides):
    defaults = dict(
        collection_capacity=120,
        crawl_budget_per_day=400.0,
        ranking_interval_days=2.0,
        reallocation_interval_days=1.0,
        measurement_interval_days=1.0,
        track_quality=True,
        use_politeness=True,
        engine="batched",
    )
    defaults.update(overrides)
    return IncrementalCrawlerConfig(**defaults)


def _fingerprint(result):
    """Everything the determinism contract covers, comparable with ==."""
    return {
        "times": list(result.freshness.times),
        "freshness": list(result.freshness.freshness),
        "age": list(result.freshness.age),
        "quality": list(result.quality),
        "quality_times": list(result.quality_times),
        "pages_crawled": result.pages_crawled,
        "pages_failed": result.pages_failed,
        "changes_detected": result.changes_detected,
        "pages_replaced": result.pages_replaced,
        "records": result.records,
        "estimator_state": result.estimator_state,
        "per_shard": result.per_shard,
    }


class TestSingleShardBitIdentity:
    def test_matches_plain_batched_crawler(self, shard_web):
        plain = IncrementalCrawler(shard_web, _config())
        plain_result = plain.run(6.0)

        sharded = ShardedCrawler(shard_web, _config(), shards=1, workers=1)
        merged = sharded.run(6.0)

        assert list(merged.freshness.times) == list(plain_result.freshness.times)
        assert list(merged.freshness.freshness) == list(
            plain_result.freshness.freshness
        )
        assert list(merged.freshness.age) == list(plain_result.freshness.age)
        assert merged.quality == plain_result.quality
        assert merged.quality_times == plain_result.quality_times
        assert merged.pages_crawled == plain_result.pages_crawled
        assert merged.pages_failed == plain_result.pages_failed
        assert merged.changes_detected == plain_result.changes_detected
        assert merged.pages_replaced == plain_result.pages_replaced
        # Per-record fetch timestamps (and every other stored field).
        assert merged.records == [
            record_to_dict(record)
            for record in plain.collection.working_records()
        ]
        assert merged.estimator_state == plain.update_module.snapshot()
        assert merged.shards == 1

    def test_single_shard_streams_windows(self, shard_web):
        sharded = ShardedCrawler(shard_web, _config(), shards=1)
        windows = []
        sharded.on_window = lambda shard, at, fresh, quality: windows.append(
            (shard, at)
        )
        result = sharded.run(4.0)
        assert [at for _, at in windows] == list(result.freshness.times)
        assert all(shard == 0 for shard, _ in windows)


class TestMultiShardDeterminism:
    def test_worker_count_never_changes_results(self, shard_web):
        serial = ShardedCrawler(shard_web, _config(), shards=2, workers=1).run(5.0)
        parallel = ShardedCrawler(shard_web, _config(), shards=2, workers=2).run(5.0)
        assert _fingerprint(serial) == _fingerprint(parallel)
        assert serial.shards == 2

    def test_merge_shape(self, shard_web):
        result = ShardedCrawler(shard_web, _config(), shards=2, workers=2).run(5.0)
        assert len(result.per_shard) == 2
        assert [row["shard"] for row in result.per_shard] == [0, 1]
        assert sum(row["capacity"] for row in result.per_shard) == 120
        assert result.pages_crawled == sum(
            row["pages_crawled"] for row in result.per_shard
        )
        assert all(0.0 <= f <= 1.0 for f in result.freshness.freshness)
        assert all(0.0 <= q <= 1.0 for q in result.quality)
        # The merged estimator document keeps every shard's estimator
        # verbatim instead of fabricating a blended history.
        assert len(result.estimator_state["shards"]) == 2

    def test_rejects_non_batched_engine(self, shard_web):
        with pytest.raises(ValueError, match="batched"):
            ShardedCrawler(shard_web, _config(engine="reference"), shards=2)


class TestShardedSpecLayer:
    WEB = WebSpec(
        site_counts={"com": 8, "edu": 4, "gov": 3, "net": 3},
        pages_per_site=12,
        horizon_days=30.0,
        seed=31,
    )

    def _spec(self, engine="batched", **crawler_overrides):
        crawler = CrawlerSpec(
            kind="incremental",
            collection_capacity=120,
            crawl_budget_per_day=400.0,
            duration_days=5.0,
            use_politeness=True,
            engine=engine,
            **crawler_overrides,
        )
        return ExperimentSpec(
            name=f"sharded-spec/{engine}", kind="crawl", web=self.WEB,
            crawler=crawler,
        )

    def test_shards_1_matches_batched_spec(self, shard_web):
        plain = run(self._spec(engine="batched"), web=shard_web)
        sharded = run(
            self._spec(engine="sharded", shards=1, workers=1), web=shard_web
        )
        assert sharded.series == plain.series
        for key in ("pages_crawled", "mean_freshness", "final_quality",
                    "changes_detected", "collection_size"):
            assert sharded.summary[key] == plain.summary[key]
        assert sharded.summary["shards"] == 1
        assert sharded.summary["workers"] == 1

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="sharded"):
            CrawlerSpec(kind="periodic", engine="sharded")
        with pytest.raises(ValueError, match="shards"):
            CrawlerSpec(kind="incremental", engine="batched", shards=2)
        with pytest.raises(ValueError, match="workers"):
            CrawlerSpec(kind="incremental", engine="sharded", workers=0)

    def test_shards_do_not_perturb_spec_hash_of_plain_specs(self):
        # shards/workers are omitted-when-None: pre-shard specs keep their
        # exact hashes, so stored results stay resumable.
        assert (
            self._spec(engine="batched").spec_hash()
            == ExperimentSpec(
                name="sharded-spec/batched", kind="crawl", web=self.WEB,
                crawler=CrawlerSpec(
                    kind="incremental", collection_capacity=120,
                    crawl_budget_per_day=400.0, duration_days=5.0,
                    use_politeness=True, engine="batched",
                ),
            ).spec_hash()
        )


class TestShardedResume:
    def test_completed_run_short_circuits_per_shard(self, shard_web, tmp_path):
        store = str(tmp_path / "sharded.sqlite")
        crawler_kwargs = dict(
            shards=2,
            workers=2,
            storage="sqlite",
            store_path=store,
            checkpoint_every=1.0,
            spec_hash="f" * 64,
        )
        first = ShardedCrawler(shard_web, _config(), **crawler_kwargs).run(4.0)
        # Every shard persisted its result; a resume replays it from the
        # store without crawling (and without worker processes diverging).
        resumed = ShardedCrawler(shard_web, _config(), **crawler_kwargs).run(
            4.0, resume=True
        )
        assert _fingerprint(first) == _fingerprint(resumed)

    def test_resume_requires_persistence(self, shard_web):
        with pytest.raises(ValueError, match="resume"):
            ShardedCrawler(shard_web, _config(), shards=2).run(3.0, resume=True)


class TestParallelMatrix:
    def test_parallel_equals_serial(self):
        base = ExperimentSpec(
            name="matrix-parity",
            kind="crawl",
            web=WebSpec(
                site_counts={"com": 6, "edu": 3},
                pages_per_site=10,
                horizon_days=20.0,
                seed=13,
            ),
            crawler=CrawlerSpec(
                kind="incremental",
                collection_capacity=50,
                crawl_budget_per_day=150.0,
                duration_days=3.0,
            ),
        )
        matrix = ScenarioMatrix(
            base=base,
            axes={"crawler.crawl_budget_per_day": [100.0, 200.0]},
        )
        serial = run_matrix(matrix)
        streamed = []
        parallel = run_matrix(
            matrix, workers=2, on_cell=lambda i, r: streamed.append(i)
        )
        assert streamed == [0, 1]
        assert len(serial.cells) == len(parallel.cells) == 2
        for ours, theirs in zip(serial.cells, parallel.cells):
            assert ours.series == theirs.series
            assert ours.summary == theirs.summary
            assert ours.tables == theirs.tables
            assert ours.spec_hash == theirs.spec_hash
            assert theirs.artifacts == {}

    def test_rejects_zero_workers(self):
        matrix = ScenarioMatrix(
            base=ExperimentSpec(
                name="x", kind="scenario", scenario="table2",
                params={"simulate": False},
            ),
            axes={"params.n_pages": [50]},
        )
        with pytest.raises(ValueError, match="workers"):
            run_matrix(matrix, workers=0)
