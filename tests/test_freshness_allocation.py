"""Tests for the optimal revisit-frequency allocation (Figure 9) and policies."""

import pytest

from repro.freshness.optimal_allocation import (
    marginal_freshness,
    optimal_frequency_curve,
    optimal_revisit_frequencies,
    page_freshness,
    proportional_revisit_frequencies,
    total_freshness,
    uniform_revisit_frequencies,
)
from repro.freshness.policies import (
    MAX_REVISIT_INTERVAL_DAYS,
    OptimalRevisitPolicy,
    ProportionalRevisitPolicy,
    UniformRevisitPolicy,
)


class TestPageFreshness:
    def test_static_page(self):
        assert page_freshness(0.0, 1.0) == 1.0

    def test_unvisited_changing_page(self):
        assert page_freshness(1.0, 0.0) == 0.0

    def test_monotone_in_frequency(self):
        values = [page_freshness(0.5, f) for f in (0.1, 1.0, 10.0)]
        assert values[0] < values[1] < values[2]

    def test_marginal_decreasing_in_frequency(self):
        values = [marginal_freshness(0.5, f) for f in (0.01, 0.1, 1.0, 10.0)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_marginal_limit_at_zero(self):
        assert marginal_freshness(2.0, 0.0) == pytest.approx(0.5)

    def test_invalid(self):
        with pytest.raises(ValueError):
            page_freshness(-1.0, 1.0)
        with pytest.raises(ValueError):
            marginal_freshness(-1.0, 1.0)


class TestSimpleAllocations:
    def test_uniform(self):
        assert uniform_revisit_frequencies([0.1, 0.2, 0.3], 3.0) == [1.0, 1.0, 1.0]

    def test_proportional(self):
        freqs = proportional_revisit_frequencies([1.0, 3.0], 4.0)
        assert freqs == pytest.approx([1.0, 3.0])

    def test_proportional_all_static_falls_back_to_uniform(self):
        assert proportional_revisit_frequencies([0.0, 0.0], 2.0) == [1.0, 1.0]

    def test_empty_population(self):
        assert uniform_revisit_frequencies([], 1.0) == []
        assert optimal_revisit_frequencies([], 1.0) == []

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            uniform_revisit_frequencies([0.1], 0.0)
        with pytest.raises(ValueError):
            proportional_revisit_frequencies([0.1], -1.0)


class TestOptimalAllocation:
    def test_budget_exhausted(self):
        rates = [0.01, 0.1, 0.5, 1.0]
        freqs = optimal_revisit_frequencies(rates, budget=2.0)
        assert sum(freqs) == pytest.approx(2.0, rel=1e-6)
        assert all(f >= 0 for f in freqs)

    def test_static_pages_get_nothing(self):
        freqs = optimal_revisit_frequencies([0.0, 0.5], budget=1.0)
        assert freqs[0] == 0.0
        assert freqs[1] == pytest.approx(1.0)

    def test_beats_uniform_and_proportional(self):
        """The paper (citing CGM99b): optimising revisit frequencies improves
        freshness over the alternatives."""
        rates = [0.02] * 40 + [0.2] * 40 + [2.0] * 20
        budget = 20.0
        optimal = total_freshness(rates, optimal_revisit_frequencies(rates, budget))
        uniform = total_freshness(rates, uniform_revisit_frequencies(rates, budget))
        proportional = total_freshness(
            rates, proportional_revisit_frequencies(rates, budget)
        )
        assert optimal > uniform
        assert optimal > proportional

    def test_improvement_within_paper_band(self):
        """The paper quotes a 10-23% freshness improvement over the uniform
        policy for realistic mixes; check the improvement is material."""
        rates = [1.0 / 0.7] * 25 + [1.0 / 3.5] * 15 + [1.0 / 15] * 15 + \
                [1.0 / 70] * 15 + [0.0001] * 30
        budget = len(rates) / 15.0  # each page visited every 15 days on average
        optimal = total_freshness(rates, optimal_revisit_frequencies(rates, budget))
        uniform = total_freshness(rates, uniform_revisit_frequencies(rates, budget))
        improvement = (optimal - uniform) / uniform
        assert improvement > 0.05

    def test_two_page_example_from_paper(self):
        """Section 4's example: p1 changes daily, p2 every second; with one
        fetch per day available it is better to spend it on p1."""
        rates = [1.0, 86400.0]
        freqs = optimal_revisit_frequencies(rates, budget=1.0)
        assert freqs[0] > freqs[1]
        assert freqs[0] == pytest.approx(1.0, rel=1e-3)

    def test_figure9_shape_unimodal(self):
        """Figure 9: optimal frequency rises with the change rate, peaks, and
        then falls back toward zero for very fast-changing pages."""
        rates = [0.001 * (1.6 ** i) for i in range(30)]
        curve = optimal_frequency_curve(rates, budget=len(rates) / 30.0)
        peak_index = curve.index(max(curve))
        assert 0 < peak_index < len(curve) - 1
        assert curve[-1] < max(curve) * 0.5
        # Rising before the peak, falling after it (allowing numerical noise).
        assert all(curve[i] <= curve[i + 1] + 1e-9 for i in range(peak_index))
        assert all(curve[i] >= curve[i + 1] - 1e-9 for i in range(peak_index, len(curve) - 1))

    def test_weighted_allocation_favours_important_pages(self):
        rates = [0.1, 0.1]
        weights = [10.0, 1.0]
        freqs = optimal_revisit_frequencies(rates, budget=1.0, weights=weights)
        assert freqs[0] > freqs[1]

    def test_weight_length_checked(self):
        with pytest.raises(ValueError):
            optimal_revisit_frequencies([0.1], 1.0, weights=[1.0, 2.0])

    def test_total_freshness_validation(self):
        with pytest.raises(ValueError):
            total_freshness([0.1], [1.0, 2.0])
        assert total_freshness([], []) == 0.0


class TestRevisitPolicies:
    def test_uniform_policy_intervals(self):
        policy = UniformRevisitPolicy()
        intervals = policy.intervals({"a": 0.1, "b": 1.0}, budget_per_day=2.0)
        assert intervals["a"] == intervals["b"] == pytest.approx(1.0)

    def test_proportional_policy_faster_pages_visited_more(self):
        policy = ProportionalRevisitPolicy()
        intervals = policy.intervals({"slow": 0.01, "fast": 1.0}, budget_per_day=2.0)
        assert intervals["fast"] < intervals["slow"]

    def test_optimal_policy_ignores_extremely_fast_pages(self):
        policy = OptimalRevisitPolicy()
        intervals = policy.intervals(
            {"normal": 0.1, "crazy": 1000.0}, budget_per_day=1.0
        )
        assert intervals["crazy"] == MAX_REVISIT_INTERVAL_DAYS
        assert intervals["normal"] < MAX_REVISIT_INTERVAL_DAYS

    def test_optimal_policy_with_importance(self):
        policy = OptimalRevisitPolicy(use_importance=True)
        intervals = policy.intervals(
            {"a": 0.1, "b": 0.1},
            budget_per_day=1.0,
            importance={"a": 0.9, "b": 0.1},
        )
        assert intervals["a"] < intervals["b"]

    def test_optimal_policy_ignores_all_zero_importance(self):
        policy = OptimalRevisitPolicy(use_importance=True)
        intervals = policy.intervals(
            {"a": 0.1, "b": 0.1}, budget_per_day=1.0, importance={"a": 0.0, "b": 0.0}
        )
        assert intervals["a"] == pytest.approx(intervals["b"])

    def test_policy_budget_validation(self):
        with pytest.raises(ValueError):
            UniformRevisitPolicy().frequencies({"a": 0.1}, budget_per_day=0.0)
        with pytest.raises(ValueError):
            UniformRevisitPolicy().frequencies({"a": -0.1}, budget_per_day=1.0)

    def test_empty_rates(self):
        assert UniformRevisitPolicy().intervals({}, budget_per_day=1.0) == {}
