"""Tests for repro.simweb.domains."""

import numpy as np
import pytest

from repro.simweb.change_models import NeverChanges, PoissonChangeProcess
from repro.simweb.domains import (
    DOMAIN_ORDER,
    DOMAIN_PROFILES,
    RATE_CLASSES,
    DomainProfile,
    overall_rate_mixture,
    profile_for,
)


class TestRateClasses:
    def test_five_classes_match_figure2_buckets(self):
        assert len(RATE_CLASSES) == 5

    def test_static_class_has_zero_rate(self):
        assert RATE_CLASSES[-1].rate_per_day == 0.0

    def test_rates_decrease_with_interval(self):
        rates = [c.rate_per_day for c in RATE_CLASSES]
        assert all(a >= b for a, b in zip(rates, rates[1:]))


class TestDomainProfiles:
    def test_table1_site_counts(self):
        assert DOMAIN_PROFILES["com"].site_count == 132
        assert DOMAIN_PROFILES["edu"].site_count == 78
        assert DOMAIN_PROFILES["netorg"].site_count == 30
        assert DOMAIN_PROFILES["gov"].site_count == 30

    def test_total_sites_is_270(self):
        assert sum(p.site_count for p in DOMAIN_PROFILES.values()) == 270

    def test_mixtures_sum_to_one(self):
        for profile in DOMAIN_PROFILES.values():
            assert sum(profile.rate_mixture) == pytest.approx(1.0)

    def test_com_changes_most(self):
        """Figure 2(b): more than 40% of com pages change daily, <10% elsewhere."""
        assert DOMAIN_PROFILES["com"].expected_daily_fraction() > 0.4
        for domain in ("edu", "gov", "netorg"):
            assert DOMAIN_PROFILES[domain].expected_daily_fraction() < 0.1

    def test_edu_gov_mostly_static(self):
        """Figure 2(b): more than half of edu/gov pages never changed."""
        assert DOMAIN_PROFILES["edu"].expected_static_fraction() > 0.5
        assert DOMAIN_PROFILES["gov"].expected_static_fraction() > 0.5

    def test_com_pages_shortest_lived(self):
        """Figure 4(b): com pages have the shortest lifespans."""
        com = DOMAIN_PROFILES["com"]
        for domain in ("edu", "gov", "netorg"):
            other = DOMAIN_PROFILES[domain]
            assert com.mean_lifespan_days < other.mean_lifespan_days
            assert com.permanent_fraction < other.permanent_fraction

    def test_domain_order_matches_table1(self):
        assert list(DOMAIN_ORDER) == ["com", "edu", "netorg", "gov"]

    def test_profile_for_unknown_domain(self):
        with pytest.raises(KeyError):
            profile_for("xyz")

    def test_profile_for_known_domain(self):
        assert profile_for("com") is DOMAIN_PROFILES["com"]


class TestDomainProfileValidation:
    def test_mixture_length_checked(self):
        with pytest.raises(ValueError):
            DomainProfile("x", 1, (0.5, 0.5), 0.5, 10.0)

    def test_mixture_sum_checked(self):
        with pytest.raises(ValueError):
            DomainProfile("x", 1, (0.5, 0.2, 0.1, 0.1, 0.3), 0.5, 10.0)

    def test_permanent_fraction_checked(self):
        with pytest.raises(ValueError):
            DomainProfile("x", 1, (0.2, 0.2, 0.2, 0.2, 0.2), 1.5, 10.0)

    def test_lifespan_checked(self):
        with pytest.raises(ValueError):
            DomainProfile("x", 1, (0.2, 0.2, 0.2, 0.2, 0.2), 0.5, -1.0)


class TestSampling:
    def test_sample_change_process_types(self, rng):
        profile = DOMAIN_PROFILES["com"]
        processes = [profile.sample_change_process(rng) for _ in range(200)]
        assert any(isinstance(p, NeverChanges) for p in processes)
        assert any(isinstance(p, PoissonChangeProcess) for p in processes)

    def test_sampled_mixture_matches_profile(self, rng):
        profile = DOMAIN_PROFILES["edu"]
        samples = [profile.sample_rate_class(rng) for _ in range(5000)]
        static_fraction = sum(1 for s in samples if s.name == "static") / len(samples)
        assert static_fraction == pytest.approx(profile.rate_mixture[-1], abs=0.03)

    def test_com_sampled_rates_higher_than_gov(self, rng):
        com_rates = [
            DOMAIN_PROFILES["com"].sample_change_process(rng).mean_rate
            for _ in range(2000)
        ]
        gov_rates = [
            DOMAIN_PROFILES["gov"].sample_change_process(rng).mean_rate
            for _ in range(2000)
        ]
        assert np.mean(com_rates) > np.mean(gov_rates)


class TestOverallMixture:
    def test_sums_to_one(self):
        assert sum(overall_rate_mixture()) == pytest.approx(1.0)

    def test_matches_figure2a_headline(self):
        """Figure 2(a): more than 20% of all pages change every day."""
        mixture = overall_rate_mixture()
        assert mixture[0] > 0.20

    def test_weighted_by_site_counts(self):
        mixture = overall_rate_mixture()
        # The com domain dominates (roughly half the sites), so the overall
        # daily fraction must be much closer to com's than to gov's.
        com_daily = DOMAIN_PROFILES["com"].rate_mixture[0]
        gov_daily = DOMAIN_PROFILES["gov"].rate_mixture[0]
        assert abs(mixture[0] - com_daily) < abs(mixture[0] - gov_daily)
