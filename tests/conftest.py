"""Shared fixtures for the test suite.

Expensive artefacts (a generated synthetic web and a completed monitoring
run) are session-scoped so the many analysis tests that only read them do
not regenerate them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiment.monitor import ActiveMonitor, ObservationLog
from repro.simweb.generator import WebGeneratorConfig, generate_web
from repro.simweb.web import SimulatedWeb


@pytest.fixture(scope="session")
def small_web() -> SimulatedWeb:
    """A small but fully featured synthetic web (session scoped, read only)."""
    config = WebGeneratorConfig(
        site_scale=0.08,
        pages_per_site=30,
        horizon_days=127.0,
        new_page_fraction=0.25,
        seed=42,
    )
    return generate_web(config)


@pytest.fixture(scope="session")
def tiny_web() -> SimulatedWeb:
    """A very small synthetic web for crawler end-to-end tests."""
    config = WebGeneratorConfig(
        site_scale=0.04,
        pages_per_site=15,
        horizon_days=60.0,
        new_page_fraction=0.2,
        seed=7,
    )
    return generate_web(config)


@pytest.fixture(scope="session")
def observation_log(small_web: SimulatedWeb) -> ObservationLog:
    """A completed monitoring run over the small web (session scoped)."""
    monitor = ActiveMonitor(small_web)
    return monitor.run(start_day=0, end_day=int(small_web.horizon_days) - 1)


@pytest.fixture()
def rng() -> np.random.Generator:
    """A seeded random generator for per-test sampling."""
    return np.random.default_rng(12345)
