"""Tests for repro.simweb.change_models."""

import numpy as np
import pytest

from repro.simweb.change_models import (
    BurstyChangeProcess,
    NeverChanges,
    PeriodicChangeProcess,
    PoissonChangeProcess,
)


class TestPoissonChangeProcess:
    def test_requires_materialisation(self):
        process = PoissonChangeProcess(1.0)
        with pytest.raises(RuntimeError):
            process.version_at(1.0)

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            PoissonChangeProcess(-1.0)

    def test_mean_rate_and_interval(self):
        process = PoissonChangeProcess(0.25)
        assert process.mean_rate == 0.25
        assert process.mean_interval == 4.0

    def test_zero_rate_never_changes(self, rng):
        process = PoissonChangeProcess(0.0)
        process.materialise(100.0, rng)
        assert process.version_at(100.0) == 0
        assert process.mean_interval == float("inf")

    def test_change_count_close_to_expectation(self, rng):
        process = PoissonChangeProcess(2.0)
        process.materialise(1000.0, rng)
        count = process.version_at(1000.0)
        assert count == pytest.approx(2000, rel=0.1)

    def test_version_monotone_in_time(self, rng):
        process = PoissonChangeProcess(1.0)
        process.materialise(50.0, rng)
        versions = [process.version_at(t) for t in np.linspace(0, 50, 200)]
        assert all(b >= a for a, b in zip(versions, versions[1:]))

    def test_changes_between_consistency(self, rng):
        process = PoissonChangeProcess(0.5)
        process.materialise(100.0, rng)
        total = process.version_at(100.0)
        split = process.changes_between(0.0, 40.0) + process.changes_between(40.0, 100.0)
        assert split == total

    def test_changes_between_rejects_reversed_interval(self, rng):
        process = PoissonChangeProcess(0.5)
        process.materialise(10.0, rng)
        with pytest.raises(ValueError):
            process.changes_between(5.0, 1.0)

    def test_changed_between_matches_count(self, rng):
        process = PoissonChangeProcess(1.0)
        process.materialise(30.0, rng)
        for t0, t1 in [(0, 5), (5, 5.001), (10, 30)]:
            assert process.changed_between(t0, t1) == (process.changes_between(t0, t1) > 0)

    def test_next_change_after(self, rng):
        process = PoissonChangeProcess(1.0)
        process.materialise(30.0, rng)
        times = process.change_times()
        if times:
            first = times[0]
            assert process.next_change_after(0.0) == first
            assert process.next_change_after(times[-1]) is None

    def test_last_change_at_or_before(self, rng):
        process = PoissonChangeProcess(1.0)
        process.materialise(30.0, rng)
        times = process.change_times()
        if times:
            assert process.last_change_at_or_before(times[0] - 1e-9) is None
            assert process.last_change_at_or_before(30.0) == times[-1]

    def test_observed_intervals_are_positive(self, rng):
        process = PoissonChangeProcess(2.0)
        process.materialise(100.0, rng)
        assert all(interval > 0 for interval in process.observed_intervals())

    def test_intervals_are_exponential(self, rng):
        from repro.analysis.statistics import fit_exponential

        process = PoissonChangeProcess(1.0)
        process.materialise(5000.0, rng)
        fit = fit_exponential(process.observed_intervals())
        assert fit.rate == pytest.approx(1.0, rel=0.1)
        assert fit.is_plausibly_exponential

    def test_negative_horizon_rejected(self, rng):
        process = PoissonChangeProcess(1.0)
        with pytest.raises(ValueError):
            process.materialise(-1.0, rng)

    def test_version_before_zero_is_zero(self, rng):
        process = PoissonChangeProcess(5.0)
        process.materialise(10.0, rng)
        assert process.version_at(-1.0) == 0


class TestPeriodicChangeProcess:
    def test_exact_change_count(self, rng):
        process = PeriodicChangeProcess(interval=10.0)
        process.materialise(100.0, rng)
        assert process.version_at(100.0) == 10

    def test_phase_offsets_changes(self, rng):
        process = PeriodicChangeProcess(interval=10.0, phase=3.0)
        process.materialise(100.0, rng)
        assert process.change_times()[0] == pytest.approx(3.0)

    def test_mean_rate(self):
        assert PeriodicChangeProcess(4.0).mean_rate == 0.25

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PeriodicChangeProcess(0.0)
        with pytest.raises(ValueError):
            PeriodicChangeProcess(1.0, phase=-1.0)


class TestBurstyChangeProcess:
    def test_mean_rate_accounts_for_burst_size(self):
        process = BurstyChangeProcess(burst_rate=0.1, burst_size=5)
        assert process.mean_rate == pytest.approx(0.5)

    def test_burst_structure(self, rng):
        process = BurstyChangeProcess(burst_rate=0.05, burst_size=4, burst_duration=0.2)
        process.materialise(1000.0, rng)
        # Total changes should be roughly bursts * burst_size.
        assert process.version_at(1000.0) == pytest.approx(0.05 * 1000 * 4, rel=0.25)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BurstyChangeProcess(-0.1)
        with pytest.raises(ValueError):
            BurstyChangeProcess(0.1, burst_size=0)
        with pytest.raises(ValueError):
            BurstyChangeProcess(0.1, burst_duration=-1.0)

    def test_zero_rate(self, rng):
        process = BurstyChangeProcess(0.0)
        process.materialise(100.0, rng)
        assert process.version_at(100.0) == 0


class TestNeverChanges:
    def test_no_changes(self, rng):
        process = NeverChanges()
        process.materialise(1000.0, rng)
        assert process.version_at(1000.0) == 0
        assert process.mean_rate == 0.0
        assert process.observed_intervals() == []
