"""Tests for AllUrls, CollUrls and the quality metric."""

import pytest

from repro.core.allurls import AllUrls
from repro.core.collurls import CollUrls
from repro.core.quality import collection_quality, true_page_importance


class TestAllUrls:
    def test_add_and_membership(self):
        registry = AllUrls()
        assert registry.add("http://a/", discovered_at=1.0)
        assert "http://a/" in registry
        assert len(registry) == 1

    def test_add_duplicate_returns_false(self):
        registry = AllUrls()
        registry.add("http://a/", 1.0)
        assert not registry.add("http://a/", 2.0)
        assert registry.info("http://a/").discovered_at == 1.0

    def test_add_many(self):
        registry = AllUrls()
        assert registry.add_many(["http://a/", "http://b/", "http://a/"], 0.0) == 2

    def test_record_link_tracks_inlinks(self):
        registry = AllUrls()
        registry.record_link("http://src/", "http://dst/", 1.0)
        registry.record_link("http://other/", "http://dst/", 2.0)
        assert registry.info("http://dst/").inlink_count == 2

    def test_record_links_registers_targets(self):
        registry = AllUrls()
        registry.record_links("http://src/", ["http://a/", "http://b/"], 1.0)
        assert "http://a/" in registry
        assert "http://b/" in registry

    def test_candidates_excludes_given_urls(self):
        registry = AllUrls()
        registry.add_many(["http://a/", "http://b/", "http://c/"], 0.0)
        candidates = registry.candidates(exclude=["http://a/"])
        assert {info.url for info in candidates} == {"http://b/", "http://c/"}

    def test_candidates_skip_failed_urls(self):
        registry = AllUrls()
        registry.add_many(["http://a/", "http://dead/"], 0.0)
        registry.record_failure("http://dead/", 5.0)
        candidates = registry.candidates(exclude=[])
        assert {info.url for info in candidates} == {"http://a/"}

    def test_record_failure_on_unknown_url_is_noop(self):
        registry = AllUrls()
        registry.record_failure("http://ghost/", 1.0)
        assert "http://ghost/" not in registry

    def test_get_and_info(self):
        registry = AllUrls()
        registry.add("http://a/", 0.0)
        assert registry.get("http://a/") is registry.info("http://a/")
        assert registry.get("http://missing/") is None
        with pytest.raises(KeyError):
            registry.info("http://missing/")

    def test_iteration(self):
        registry = AllUrls()
        registry.add_many(["http://a/", "http://b/"], 0.0)
        assert set(registry) == {"http://a/", "http://b/"}
        assert set(registry.urls()) == {"http://a/", "http://b/"}


class TestCollUrls:
    def test_pop_in_time_order(self):
        queue = CollUrls()
        queue.schedule("http://late/", 5.0)
        queue.schedule("http://early/", 1.0)
        queue.schedule("http://middle/", 3.0)
        assert queue.pop()[0] == "http://early/"
        assert queue.pop()[0] == "http://middle/"
        assert queue.pop()[0] == "http://late/"
        assert queue.pop() is None

    def test_reschedule_replaces_entry(self):
        queue = CollUrls()
        queue.schedule("http://a/", 10.0)
        queue.schedule("http://a/", 1.0)
        assert len(queue) == 1
        url, time = queue.pop()
        assert url == "http://a/"
        assert time == 1.0
        assert queue.pop() is None

    def test_schedule_front_jumps_the_queue(self):
        queue = CollUrls()
        queue.schedule("http://a/", 1.0)
        queue.schedule("http://b/", 2.0)
        queue.schedule_front("http://new/", now=5.0)
        assert queue.pop()[0] == "http://new/"

    def test_schedule_front_on_empty_queue(self):
        queue = CollUrls()
        queue.schedule_front("http://only/", now=3.0)
        assert queue.pop()[0] == "http://only/"

    def test_remove(self):
        queue = CollUrls()
        queue.schedule("http://a/", 1.0)
        queue.schedule("http://b/", 2.0)
        assert queue.remove("http://a/")
        assert not queue.remove("http://a/")
        assert queue.pop()[0] == "http://b/"

    def test_peek_does_not_remove(self):
        queue = CollUrls()
        queue.schedule("http://a/", 1.0)
        assert queue.peek()[0] == "http://a/"
        assert queue.peek_time() == 1.0
        assert len(queue) == 1

    def test_peek_empty(self):
        queue = CollUrls()
        assert queue.peek() is None
        assert queue.peek_time() is None

    def test_contains_and_scheduled_time(self):
        queue = CollUrls()
        queue.schedule("http://a/", 4.0)
        assert "http://a/" in queue
        assert queue.scheduled_time("http://a/") == 4.0
        assert queue.scheduled_time("http://b/") is None

    def test_urls_listing(self):
        queue = CollUrls()
        queue.schedule("http://a/", 1.0)
        queue.schedule("http://b/", 2.0)
        assert set(queue.urls()) == {"http://a/", "http://b/"}

    def test_ties_broken_by_insertion_order(self):
        queue = CollUrls()
        queue.schedule("http://first/", 1.0)
        queue.schedule("http://second/", 1.0)
        assert queue.pop()[0] == "http://first/"
        assert queue.pop()[0] == "http://second/"

    def test_stale_heap_entries_skipped_after_removal(self):
        queue = CollUrls()
        queue.schedule("http://a/", 1.0)
        queue.remove("http://a/")
        queue.schedule("http://b/", 5.0)
        assert queue.pop()[0] == "http://b/"


class TestQuality:
    def test_true_importance_sums_to_one(self, tiny_web):
        importance = true_page_importance(tiny_web)
        assert sum(importance.values()) == pytest.approx(1.0)
        assert set(importance) == set(tiny_web.urls())

    def test_roots_are_most_important(self, tiny_web):
        importance = true_page_importance(tiny_web)
        roots = set(tiny_web.seed_urls())
        top_urls = sorted(importance, key=importance.get, reverse=True)[: len(roots)]
        # Cross-site links point at root pages, so roots should dominate the top.
        assert len(roots & set(top_urls)) >= len(roots) // 2

    def test_perfect_collection_has_quality_one(self, tiny_web):
        importance = true_page_importance(tiny_web)
        best = sorted(importance, key=importance.get, reverse=True)[:10]
        assert collection_quality(best, importance, capacity=10) == pytest.approx(1.0)

    def test_worst_collection_has_low_quality(self, tiny_web):
        importance = true_page_importance(tiny_web)
        worst = sorted(importance, key=importance.get)[:10]
        assert collection_quality(worst, importance, capacity=10) < 0.5

    def test_empty_collection(self, tiny_web):
        importance = true_page_importance(tiny_web)
        assert collection_quality([], importance) == 0.0

    def test_unknown_urls_contribute_nothing(self, tiny_web):
        importance = true_page_importance(tiny_web)
        assert collection_quality(["http://ghost/"], importance, capacity=1) == 0.0

    def test_invalid_capacity(self, tiny_web):
        importance = true_page_importance(tiny_web)
        with pytest.raises(ValueError):
            collection_quality(["x"], importance, capacity=0)
