"""Contract tests for the pluggable storage backends.

Every backend must honour one contract — put/get/scan with first-put scan
order, idempotent deletes, append-only event logs with resume truncation,
and JSON state blobs that round-trip floats bit-exactly — so the tests are
parametrized over all registered backends.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.api.registry import STORAGE_BACKENDS
from repro.api.specs import CrawlerSpec, ExperimentSpec, WebSpec
from repro.storage import (
    ColumnarBackend,
    InPlaceCollection,
    InvertedIndex,
    MemoryBackend,
    PageRecord,
    SqliteBackend,
    record_from_dict,
    record_to_dict,
)

BACKEND_NAMES = ("memory", "sqlite", "columnar")


def make_record(url: str, fetched_at: float = 1.5, **overrides) -> PageRecord:
    fields = dict(
        url=url,
        content=f"body of {url}",
        checksum=f"ck-{url}",
        fetched_at=fetched_at,
        first_fetched_at=min(fetched_at, overrides.get("first_fetched_at", fetched_at)),
        outlinks=(f"{url}/a", f"{url}/b"),
        importance=0.125,
        visit_count=3,
        change_count=1,
    )
    fields.update(overrides)
    return PageRecord(**fields)


@pytest.fixture(params=BACKEND_NAMES)
def backend(request):
    instance = STORAGE_BACKENDS.create(request.param, path=None)
    yield instance
    instance.close()


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
def test_backends_are_registered():
    names = STORAGE_BACKENDS.names()
    for name in BACKEND_NAMES:
        assert name in names


def test_registry_creates_expected_classes():
    assert isinstance(STORAGE_BACKENDS.create("memory"), MemoryBackend)
    assert isinstance(STORAGE_BACKENDS.create("sqlite"), SqliteBackend)
    assert isinstance(STORAGE_BACKENDS.create("columnar"), ColumnarBackend)


def test_durability_flags():
    assert not MemoryBackend.can_persist
    assert not ColumnarBackend.can_persist
    assert SqliteBackend.can_persist
    assert not MemoryBackend().persistent
    assert not SqliteBackend().persistent  # in-memory form


# --------------------------------------------------------------------- #
# Record contract
# --------------------------------------------------------------------- #
def test_put_get_roundtrip_exact(backend):
    record = make_record("u/1", fetched_at=1.0 / 3.0, importance=0.1 + 0.2)
    backend.put_records([record])
    loaded = backend.get_record("u/1")
    assert loaded is not None
    assert record_to_dict(loaded) == record_to_dict(record)
    assert loaded.fetched_at == record.fetched_at  # bit-exact, not approx
    assert loaded.importance == record.importance
    assert isinstance(loaded.outlinks, tuple)


def test_get_missing_returns_none(backend):
    assert backend.get_record("nope") is None


def test_scan_order_is_first_put(backend):
    backend.put_records([make_record("b"), make_record("a"), make_record("c")])
    assert [r.url for r in backend.scan_records()] == ["b", "a", "c"]


def test_upsert_keeps_scan_position(backend):
    backend.put_records([make_record("b"), make_record("a"), make_record("c")])
    backend.put_records([make_record("a", fetched_at=9.0, visit_count=7)])
    assert [r.url for r in backend.scan_records()] == ["b", "a", "c"]
    assert backend.get_record("a").visit_count == 7
    assert backend.record_count() == 3


def test_delete_then_reput_moves_to_end(backend):
    backend.put_records([make_record("b"), make_record("a"), make_record("c")])
    assert backend.delete_record("b") is True
    assert backend.delete_record("b") is False  # idempotent
    assert backend.record_count() == 2
    backend.put_records([make_record("b")])
    assert [r.url for r in backend.scan_records()] == ["a", "c", "b"]


def test_clear_and_replace_records(backend):
    backend.put_records([make_record("a"), make_record("b")])
    backend.clear_records()
    assert backend.record_count() == 0
    assert backend.scan_records() == []
    backend.replace_records([make_record("z"), make_record("y")])
    assert [r.url for r in backend.scan_records()] == ["z", "y"]


# --------------------------------------------------------------------- #
# Event contract
# --------------------------------------------------------------------- #
def test_events_append_scan_truncate(backend):
    events = [
        ("u/1", 0.5, True, True),
        ("u/2", 0.75, False, True),
        ("u/3", 1.0, False, False),
    ]
    backend.append_events(events)
    backend.append_events([])  # no-op
    assert backend.event_count() == 3
    assert backend.scan_events() == events
    backend.truncate_events(2)
    assert backend.scan_events() == events[:2]
    backend.truncate_events(0)
    assert backend.event_count() == 0


def test_event_times_roundtrip_exact(backend):
    time = 1.0 / 3.0 + 1e-9
    backend.append_events([("u", time, True, True)])
    assert backend.scan_events()[0][1] == time


# --------------------------------------------------------------------- #
# State contract
# --------------------------------------------------------------------- #
def test_state_save_load_delete(backend):
    assert backend.load_state("missing") is None
    payload = {
        "floats": [1.0 / 3.0, 0.1 + 0.2, math.inf],
        "nested": {"b": 2, "a": 1},  # order must survive
        "count": 42,
    }
    backend.save_state("chk", payload)
    loaded = backend.load_state("chk")
    assert loaded == payload
    assert list(loaded["nested"]) == ["b", "a"]
    assert loaded["floats"][0] == payload["floats"][0]
    assert math.isinf(loaded["floats"][2])
    backend.save_state("chk", {"count": 1})
    assert backend.load_state("chk") == {"count": 1}
    assert backend.delete_state("chk") is True
    assert backend.delete_state("chk") is False
    assert backend.load_state("chk") is None


def test_state_documents_are_detached_copies(backend):
    payload = {"values": [1, 2]}
    backend.save_state("k", payload)
    payload["values"].append(3)
    assert backend.load_state("k") == {"values": [1, 2]}


# --------------------------------------------------------------------- #
# SQLite specifics
# --------------------------------------------------------------------- #
def test_sqlite_file_persistence(tmp_path):
    path = str(tmp_path / "store.sqlite")
    first = SqliteBackend(path)
    assert first.persistent
    first.put_records([make_record("b"), make_record("a")])
    first.append_events([("b", 0.5, True, True)])
    first.save_state("chk", {"n": 7})
    first.close()

    reopened = SqliteBackend(path)
    try:
        assert [r.url for r in reopened.scan_records()] == ["b", "a"]
        assert reopened.scan_events() == [("b", 0.5, True, True)]
        assert reopened.load_state("chk") == {"n": 7}
    finally:
        reopened.close()


# --------------------------------------------------------------------- #
# Columnar specifics
# --------------------------------------------------------------------- #
def test_columnar_numeric_columns_and_live_urls():
    backend = ColumnarBackend()
    backend.put_records(
        [make_record("a", fetched_at=1.0), make_record("b", fetched_at=2.0),
         make_record("c", fetched_at=3.0)]
    )
    backend.delete_record("b")
    assert backend.live_urls() == ["a", "c"]
    columns = backend.numeric_columns()
    assert columns["fetched_at"].tolist() == [1.0, 3.0]
    assert columns["visit_count"].tolist() == [3, 3]
    backend.append_events([("a", 0.25, True, True), ("c", 0.5, False, True)])
    event_columns = backend.event_columns()
    assert event_columns["time"].tolist() == [0.25, 0.5]
    assert event_columns["changed"].tolist() == [True, False]


def test_columnar_growth_past_initial_capacity():
    backend = ColumnarBackend()
    n = 3000  # beyond the initial chunk, forcing several doublings
    backend.put_records([make_record(f"u/{i}", fetched_at=float(i)) for i in range(n)])
    assert backend.record_count() == n
    assert backend.get_record("u/2999").fetched_at == 2999.0
    assert [r.url for r in backend.scan_records()][:3] == ["u/0", "u/1", "u/2"]


# --------------------------------------------------------------------- #
# Record serialization
# --------------------------------------------------------------------- #
def test_record_dict_roundtrip_through_json():
    record = make_record("u/x", fetched_at=1.0 / 7.0)
    payload = json.loads(json.dumps(record_to_dict(record)))
    rebuilt = record_from_dict(payload)
    assert record_to_dict(rebuilt) == record_to_dict(record)
    assert rebuilt.fetched_at == record.fetched_at
    assert rebuilt.outlinks == record.outlinks


# --------------------------------------------------------------------- #
# InvertedIndex.rebuild_from (satellite)
# --------------------------------------------------------------------- #
def test_rebuild_from_collection_roundtrip():
    collection = InPlaceCollection(capacity=10)
    collection.store(make_record("u/cats", content="cats purr softly"))
    collection.store(make_record("u/dogs", content="dogs bark loudly"))

    incremental = InvertedIndex()
    for record in collection.current_records():
        incremental.add_document(record.url, record.content)

    rebuilt = InvertedIndex()
    count = rebuilt.rebuild_from(collection)
    assert count == 2
    assert rebuilt.n_documents == incremental.n_documents
    assert rebuilt.n_terms == incremental.n_terms
    assert rebuilt.search("cats") == incremental.search("cats")

    # Rebuilding replaces previous contents entirely.
    rebuilt.add_document("stale", "stale entry")
    assert rebuilt.rebuild_from(collection) == 2
    assert "stale" not in rebuilt


def test_rebuild_from_storage_backend():
    backend = MemoryBackend()
    backend.put_records(
        [make_record("u/1", content="alpha beta"), make_record("u/2", content="beta gamma")]
    )
    index = InvertedIndex()
    assert index.rebuild_from(backend) == 2
    assert index.document_frequency("beta") == 2
    assert [doc for doc, _score in index.search("alpha")] == ["u/1"]


def test_rebuild_from_rejects_unknown_source():
    with pytest.raises(TypeError, match="Collection .* or a .*StorageBackend"):
        InvertedIndex().rebuild_from(object())


# --------------------------------------------------------------------- #
# Spec round-tripping of the new fields (satellite)
# --------------------------------------------------------------------- #
def test_crawler_spec_storage_fields_roundtrip():
    spec = CrawlerSpec(storage="sqlite", checkpoint_every=5.0)
    assert CrawlerSpec.from_dict(spec.to_dict()) == spec
    assert CrawlerSpec.from_json(spec.to_json()) == spec
    data = spec.to_dict()
    assert data["storage"] == "sqlite"
    assert data["checkpoint_every"] == 5.0


def test_crawler_spec_omits_unset_storage_fields():
    data = CrawlerSpec().to_dict()
    assert "storage" not in data
    assert "checkpoint_every" not in data
    assert CrawlerSpec.from_dict(data) == CrawlerSpec()


def test_spec_hashes_stable_without_storage_fields():
    # Pinned pre-storage-backend hashes: specs that never set the new
    # fields must hash exactly as they did before the fields existed.
    assert CrawlerSpec().spec_hash() == (
        "d3ee2e4e316a1b159f6985e51eb2a11dcc5e5e6ed0d8e9ef496611170f13a098"
    )
    assert ExperimentSpec(
        name="x", web=WebSpec(), crawler=CrawlerSpec()
    ).spec_hash() == (
        "28c49064edce0f13a147f8928c96a838d180eb1198cf8e09763a5caa61955e61"
    )


def test_spec_hash_changes_when_storage_set():
    assert CrawlerSpec(storage="memory").spec_hash() != CrawlerSpec().spec_hash()


@pytest.mark.parametrize(
    "kwargs, message",
    [
        (dict(storage="nope"), "unknown storage backend"),
        (dict(storage="sqlite", kind="periodic"), "incremental"),
        (dict(checkpoint_every=1.0), "requires a storage backend"),
        (dict(storage="sqlite", checkpoint_every=0.0), "positive"),
        (dict(storage="sqlite", checkpoint_every=-2.0), "positive"),
        (dict(storage="sqlite", checkpoint_every=1.0, engine="reference"), "batched"),
    ],
)
def test_crawler_spec_storage_validation(kwargs, message):
    with pytest.raises(ValueError, match=message):
        CrawlerSpec(**kwargs)
