"""Tests for repro.simweb.page, repro.simweb.site and repro.simweb.lifespan."""

import numpy as np
import pytest

from repro.simweb.change_models import NeverChanges, PoissonChangeProcess
from repro.simweb.lifespan import LifespanModel, sample_lifespan
from repro.simweb.page import SimulatedPage
from repro.simweb.site import SimulatedSite


def make_page(url="http://s.com/p", rate=1.0, created_at=0.0, lifespan=None,
              depth=1, site_id="s.com", domain="com", horizon=100.0, seed=0):
    process = PoissonChangeProcess(rate) if rate > 0 else NeverChanges()
    process.materialise(horizon, np.random.default_rng(seed))
    return SimulatedPage(
        url=url,
        site_id=site_id,
        domain=domain,
        depth=depth,
        created_at=created_at,
        lifespan=lifespan,
        change_process=process,
        rng_seed=seed,
    )


class TestLifespanModel:
    def test_permanent_pages(self, rng):
        model = LifespanModel(permanent_fraction=1.0, mean_lifespan_days=10.0)
        assert all(model.sample(rng) is None for _ in range(50))

    def test_mortal_pages(self, rng):
        model = LifespanModel(permanent_fraction=0.0, mean_lifespan_days=10.0)
        samples = [model.sample(rng) for _ in range(2000)]
        assert all(s is not None and s >= 1.0 for s in samples)
        assert np.mean(samples) == pytest.approx(10.0, rel=0.2)

    def test_minimum_lifespan_enforced(self, rng):
        model = LifespanModel(0.0, mean_lifespan_days=0.5, minimum_lifespan_days=2.0)
        assert all(model.sample(rng) >= 2.0 for _ in range(100))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LifespanModel(-0.1, 10.0)
        with pytest.raises(ValueError):
            LifespanModel(0.5, 0.0)
        with pytest.raises(ValueError):
            LifespanModel(0.5, 10.0, minimum_lifespan_days=-1.0)

    def test_convenience_wrapper(self, rng):
        value = sample_lifespan(0.0, 20.0, rng)
        assert value is None or value >= 1.0


class TestSimulatedPage:
    def test_existence_window(self):
        page = make_page(created_at=10.0, lifespan=20.0)
        assert not page.exists_at(5.0)
        assert page.exists_at(10.0)
        assert page.exists_at(29.9)
        assert not page.exists_at(30.0)

    def test_permanent_page_always_exists(self):
        page = make_page(created_at=0.0, lifespan=None)
        assert page.exists_at(0.0)
        assert page.exists_at(1e6)
        assert page.deleted_at is None

    def test_visible_lifespan_truncated_by_horizon(self):
        page = make_page(created_at=10.0, lifespan=200.0)
        assert page.visible_lifespan(horizon=100.0) == pytest.approx(90.0)

    def test_visible_lifespan_of_short_lived_page(self):
        page = make_page(created_at=10.0, lifespan=5.0)
        assert page.visible_lifespan(horizon=100.0) == pytest.approx(5.0)

    def test_version_changes_with_process(self):
        page = make_page(rate=1.0)
        assert page.version_at(0.0) == 0
        assert page.version_at(100.0) > 0

    def test_version_relative_to_creation(self):
        page = make_page(rate=1.0, created_at=50.0, horizon=50.0)
        # Before creation, no changes have happened.
        assert page.version_at(10.0) == 0

    def test_content_changes_with_version(self):
        page = make_page(rate=2.0)
        first_change = page.change_process.change_times()[0]
        before = page.content_at(first_change - 1e-6)
        after = page.content_at(first_change + 1e-6)
        assert before != after

    def test_content_stable_between_changes(self):
        page = make_page(rate=0.0)
        assert page.content_at(1.0) == page.content_at(50.0)

    def test_snapshot_fields(self):
        page = make_page()
        page.set_outlinks(["http://s.com/a", "http://s.com/b"])
        snapshot = page.snapshot_at(3.0)
        assert snapshot.url == page.url
        assert snapshot.fetched_at == 3.0
        assert snapshot.outlinks == ("http://s.com/a", "http://s.com/b")
        assert "version:" in snapshot.content

    def test_snapshot_of_missing_page_raises(self):
        page = make_page(created_at=10.0, lifespan=5.0)
        with pytest.raises(LookupError):
            page.snapshot_at(50.0)

    def test_outlinks_deduplicated(self):
        page = make_page()
        page.set_outlinks(["a", "a", "b"])
        assert page.outlinks == ("a", "b")

    def test_add_outlink_idempotent(self):
        page = make_page()
        page.add_outlink("x")
        page.add_outlink("x")
        assert page.outlinks == ("x",)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            make_page(depth=-1)
        with pytest.raises(ValueError):
            make_page(created_at=-1.0)
        with pytest.raises(ValueError):
            make_page(lifespan=0.0)


class TestSimulatedSite:
    def _build_site(self, n_pages=10, window_size=5):
        site = SimulatedSite("s.com", "com", window_size=window_size)
        root = make_page(url="http://s.com/", depth=0, seed=1)
        site.add_page(root, is_root=True)
        pages = [root]
        for i in range(n_pages - 1):
            page = make_page(url=f"http://s.com/p{i}", depth=1, seed=i + 2)
            root.add_outlink(page.url)
            site.add_page(page)
            pages.append(page)
        return site, pages

    def test_root_registration(self):
        site, pages = self._build_site()
        assert site.root_url == "http://s.com/"

    def test_root_must_be_permanent(self):
        site = SimulatedSite("s.com", "com", window_size=5)
        mortal_root = make_page(url="http://s.com/", depth=0, lifespan=5.0)
        with pytest.raises(ValueError):
            site.add_page(mortal_root, is_root=True)

    def test_missing_root_raises(self):
        site = SimulatedSite("s.com", "com", window_size=5)
        with pytest.raises(RuntimeError):
            _ = site.root_url

    def test_duplicate_page_rejected(self):
        site, pages = self._build_site()
        with pytest.raises(ValueError):
            site.add_page(make_page(url="http://s.com/"))

    def test_foreign_page_rejected(self):
        site, _ = self._build_site()
        foreign = make_page(url="http://other.com/x", site_id="other.com")
        with pytest.raises(ValueError):
            site.add_page(foreign)

    def test_window_respects_size(self):
        site, pages = self._build_site(n_pages=10, window_size=5)
        window = site.window_at(1.0)
        assert len(window) == 5

    def test_window_starts_at_root(self):
        site, pages = self._build_site()
        window = site.window_at(1.0)
        assert window[0].url == site.root_url

    def test_window_excludes_dead_pages(self):
        site = SimulatedSite("s.com", "com", window_size=10)
        root = make_page(url="http://s.com/", depth=0)
        site.add_page(root, is_root=True)
        dead = make_page(url="http://s.com/dead", created_at=0.0, lifespan=5.0)
        root.add_outlink(dead.url)
        site.add_page(dead)
        assert any(p.url == dead.url for p in site.window_at(1.0))
        assert not any(p.url == dead.url for p in site.window_at(10.0))

    def test_window_includes_new_pages_when_created(self):
        site = SimulatedSite("s.com", "com", window_size=10)
        root = make_page(url="http://s.com/", depth=0)
        site.add_page(root, is_root=True)
        newborn = make_page(url="http://s.com/new", created_at=20.0, lifespan=None)
        root.add_outlink(newborn.url)
        site.add_page(newborn)
        assert not any(p.url == newborn.url for p in site.window_at(10.0))
        assert any(p.url == newborn.url for p in site.window_at(25.0))

    def test_window_contains_orphans_when_space_remains(self):
        site = SimulatedSite("s.com", "com", window_size=10)
        root = make_page(url="http://s.com/", depth=0)
        site.add_page(root, is_root=True)
        orphan = make_page(url="http://s.com/orphan", depth=3)
        site.add_page(orphan)  # no link from the root
        urls = site.window_urls_at(1.0)
        assert orphan.url in urls

    def test_live_pages_at(self):
        site, pages = self._build_site()
        assert len(site.live_pages_at(1.0)) == len(pages)

    def test_mean_change_rate_nonnegative(self):
        site, _ = self._build_site()
        assert site.mean_change_rate() >= 0.0

    def test_contains_and_len(self):
        site, pages = self._build_site(n_pages=4)
        assert len(site) == 4
        assert pages[0].url in site
        assert "http://nowhere/" not in site

    def test_invalid_window_size(self):
        with pytest.raises(ValueError):
            SimulatedSite("s.com", "com", window_size=0)
