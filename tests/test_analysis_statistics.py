"""Tests for repro.analysis.statistics."""

import math

import numpy as np
import pytest

from repro.analysis.statistics import (
    exponential_goodness_of_fit,
    fit_exponential,
    kolmogorov_smirnov_exponential,
    mean_confidence_interval,
    normal_quantile,
    poisson_rate_confidence_interval,
)


class TestFitExponential:
    def test_recovers_rate_of_exponential_sample(self):
        rng = np.random.default_rng(0)
        data = rng.exponential(scale=10.0, size=5000)
        fit = fit_exponential(data)
        assert fit.rate == pytest.approx(0.1, rel=0.05)
        assert fit.mean_interval == pytest.approx(10.0, rel=0.05)

    def test_exponential_sample_passes_plausibility_check(self):
        rng = np.random.default_rng(1)
        data = rng.exponential(scale=5.0, size=3000)
        fit = fit_exponential(data)
        assert fit.is_plausibly_exponential

    def test_uniform_sample_fails_plausibility_check(self):
        rng = np.random.default_rng(2)
        data = rng.uniform(9.0, 11.0, size=3000)
        fit = fit_exponential(data)
        assert not fit.is_plausibly_exponential

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            fit_exponential([])

    def test_non_positive_data_rejected(self):
        with pytest.raises(ValueError):
            fit_exponential([1.0, 0.0, 2.0])

    def test_n_samples_recorded(self):
        fit = fit_exponential([1.0, 2.0, 3.0, 4.0])
        assert fit.n_samples == 4


class TestKolmogorovSmirnov:
    def test_perfect_exponential_has_small_statistic(self):
        rng = np.random.default_rng(3)
        data = rng.exponential(scale=1.0, size=4000)
        ks = kolmogorov_smirnov_exponential(data, rate=1.0)
        assert ks < 0.05

    def test_wrong_rate_has_large_statistic(self):
        rng = np.random.default_rng(4)
        data = rng.exponential(scale=1.0, size=4000)
        ks = kolmogorov_smirnov_exponential(data, rate=5.0)
        assert ks > 0.3

    def test_statistic_is_bounded(self):
        ks = kolmogorov_smirnov_exponential([1.0, 2.0, 3.0], rate=0.5)
        assert 0.0 <= ks <= 1.0

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            kolmogorov_smirnov_exponential([], rate=1.0)


class TestGoodnessOfFit:
    def test_good_fit_has_small_statistic(self):
        rng = np.random.default_rng(5)
        data = rng.exponential(scale=2.0, size=5000)
        statistic = exponential_goodness_of_fit(data, rate=0.5)
        assert statistic < 0.05

    def test_bad_fit_has_larger_statistic(self):
        rng = np.random.default_rng(6)
        data = rng.uniform(0.0, 4.0, size=5000)
        good = exponential_goodness_of_fit(rng.exponential(2.0, size=5000), rate=0.5)
        bad = exponential_goodness_of_fit(data, rate=0.5)
        assert bad > good

    def test_requires_positive_rate(self):
        with pytest.raises(ValueError):
            exponential_goodness_of_fit([1.0], rate=0.0)

    def test_requires_data(self):
        with pytest.raises(ValueError):
            exponential_goodness_of_fit([], rate=1.0)


class TestNormalQuantile:
    def test_median(self):
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-9)

    def test_standard_values(self):
        assert normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-4)
        assert normal_quantile(0.995) == pytest.approx(2.575829, abs=1e-4)

    def test_symmetry(self):
        assert normal_quantile(0.3) == pytest.approx(-normal_quantile(0.7), abs=1e-9)

    def test_tails(self):
        assert normal_quantile(1e-6) < -4.0
        assert normal_quantile(1 - 1e-6) > 4.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            normal_quantile(0.0)
        with pytest.raises(ValueError):
            normal_quantile(1.0)


class TestMeanConfidenceInterval:
    def test_contains_mean(self):
        mean, lower, upper = mean_confidence_interval([1.0, 2.0, 3.0, 4.0, 5.0])
        assert lower <= mean <= upper
        assert mean == pytest.approx(3.0)

    def test_single_value_degenerate(self):
        mean, lower, upper = mean_confidence_interval([7.0])
        assert mean == lower == upper == 7.0

    def test_wider_confidence_wider_interval(self):
        data = list(np.random.default_rng(7).normal(0, 1, 100))
        _, lower95, upper95 = mean_confidence_interval(data, confidence=0.95)
        _, lower99, upper99 = mean_confidence_interval(data, confidence=0.99)
        assert (upper99 - lower99) > (upper95 - lower95)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])


class TestPoissonRateConfidenceInterval:
    def test_point_estimate(self):
        rate, lower, upper = poisson_rate_confidence_interval(10, 100.0)
        assert rate == pytest.approx(0.1)
        assert lower <= rate <= upper

    def test_zero_events(self):
        rate, lower, upper = poisson_rate_confidence_interval(0, 50.0)
        assert rate == 0.0
        assert lower == 0.0
        assert upper > 0.0

    def test_more_events_narrower_relative_interval(self):
        _, lower_few, upper_few = poisson_rate_confidence_interval(5, 50.0)
        _, lower_many, upper_many = poisson_rate_confidence_interval(500, 5000.0)
        relative_few = (upper_few - lower_few) / 0.1
        relative_many = (upper_many - lower_many) / 0.1
        assert relative_many < relative_few

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            poisson_rate_confidence_interval(1, 0.0)
        with pytest.raises(ValueError):
            poisson_rate_confidence_interval(-1, 10.0)
