"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

FAST_WEB_ARGS = ["--site-scale", "0.03", "--pages-per-site", "12", "--horizon-days", "40"]


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_parses_web_stats(self):
        args = build_parser().parse_args(FAST_WEB_ARGS + ["web-stats"])
        assert args.command == "web-stats"
        assert args.site_scale == 0.03

    def test_parses_run_crawler_options(self):
        args = build_parser().parse_args(
            FAST_WEB_ARGS
            + ["run-crawler", "--mode", "periodic", "--capacity", "50",
               "--budget", "100", "--duration", "10"]
        )
        assert args.mode == "periodic"
        assert args.capacity == 50

    def test_rejects_unknown_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-crawler", "--mode", "bogus"])


class TestCommands:
    def test_web_stats(self, capsys):
        assert main(FAST_WEB_ARGS + ["web-stats"]) == 0
        output = capsys.readouterr().out
        assert "synthetic web" in output
        assert "sites" in output

    def test_compare_policies(self, capsys):
        assert main(["compare-policies"]) == 0
        output = capsys.readouterr().out
        assert "Table 2" in output
        assert "steady / in-place" in output

    def test_run_experiment_short(self, capsys):
        assert main(FAST_WEB_ARGS + ["run-experiment", "--days", "20"]) == 0
        output = capsys.readouterr().out
        assert "Figure 2(a)" in output
        assert "Figure 5" in output

    def test_run_incremental_crawler(self, capsys):
        assert main(
            FAST_WEB_ARGS
            + ["run-crawler", "--mode", "incremental", "--capacity", "40",
               "--budget", "120", "--duration", "8"]
        ) == 0
        output = capsys.readouterr().out
        assert "mean freshness" in output

    def test_run_periodic_crawler(self, capsys):
        assert main(
            FAST_WEB_ARGS
            + ["run-crawler", "--mode", "periodic", "--capacity", "40",
               "--budget", "200", "--duration", "12", "--cycle-days", "5"]
        ) == 0
        output = capsys.readouterr().out
        assert "periodic" in output
