"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main

FAST_WEB_ARGS = ["--site-scale", "0.03", "--pages-per-site", "12", "--horizon-days", "40"]


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_parses_web_stats(self):
        args = build_parser().parse_args(FAST_WEB_ARGS + ["web-stats"])
        assert args.command == "web-stats"
        assert args.site_scale == 0.03

    def test_parses_run_crawler_options(self):
        args = build_parser().parse_args(
            FAST_WEB_ARGS
            + ["run-crawler", "--mode", "periodic", "--capacity", "50",
               "--budget", "100", "--duration", "10"]
        )
        assert args.mode == "periodic"
        assert args.capacity == 50

    def test_rejects_unknown_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-crawler", "--mode", "bogus"])


class TestCommands:
    def test_web_stats(self, capsys):
        assert main(FAST_WEB_ARGS + ["web-stats"]) == 0
        output = capsys.readouterr().out
        assert "synthetic web" in output
        assert "sites" in output

    def test_compare_policies(self, capsys):
        assert main(["compare-policies"]) == 0
        output = capsys.readouterr().out
        assert "Table 2" in output
        assert "steady / in-place" in output

    def test_run_experiment_short(self, capsys):
        assert main(FAST_WEB_ARGS + ["run-experiment", "--days", "20"]) == 0
        output = capsys.readouterr().out
        assert "Figure 2(a)" in output
        assert "Figure 5" in output

    def test_run_incremental_crawler(self, capsys):
        assert main(
            FAST_WEB_ARGS
            + ["run-crawler", "--mode", "incremental", "--capacity", "40",
               "--budget", "120", "--duration", "8"]
        ) == 0
        output = capsys.readouterr().out
        assert "mean freshness" in output

    def test_run_periodic_crawler(self, capsys):
        assert main(
            FAST_WEB_ARGS
            + ["run-crawler", "--mode", "periodic", "--capacity", "40",
               "--budget", "200", "--duration", "12", "--cycle-days", "5"]
        ) == 0
        output = capsys.readouterr().out
        assert "periodic" in output

    def test_list_scenarios(self, capsys):
        assert main(["list-scenarios"]) == 0
        output = capsys.readouterr().out
        for name in ("table2", "figure7", "revisit-policies",
                     "optimal", "ep", "poisson"):
            assert name in output

    def test_run_spec_crawl(self, tmp_path, capsys):
        spec = {
            "name": "test/crawl",
            "kind": "crawl",
            "web": {"site_scale": 0.03, "pages_per_site": 10,
                    "horizon_days": 30.0, "seed": 3},
            "crawler": {"kind": "incremental", "collection_capacity": 25,
                        "crawl_budget_per_day": 80.0, "duration_days": 4.0},
            "policy": {"revisit_policy": "optimal", "estimator": "ep"},
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        assert main(["run-spec", str(path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "test/crawl"
        assert payload["provenance"]["seed"] == 3
        assert len(payload["provenance"]["spec_hash"]) == 64
        assert payload["summary"]["pages_crawled"] > 0

    def test_run_spec_scenario_writes_out_file(self, tmp_path, capsys):
        spec = {"name": "test/table2", "kind": "scenario", "scenario": "table2",
                "params": {"n_pages": 30, "n_cycles": 2}}
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec))
        out = tmp_path / "result.json"
        assert main(["run-spec", str(path), "--out", str(out), "--compact"]) == 0
        payload = json.loads(out.read_text())
        assert "steady / in-place" in payload["tables"]["analytic"]
        assert payload["provenance"]["spec_hash"]

    def test_run_spec_invalid_spec_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "x", "kind": "scenario",
                                    "scenario": "bogus"}))
        assert main(["run-spec", str(path)]) == 2
        captured = capsys.readouterr()
        assert "bogus" in captured.err
        assert "table2" in captured.err  # the error lists registered scenarios

    def test_run_spec_wrongly_typed_field_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "typed.json"
        path.write_text(json.dumps({
            "name": "x", "kind": "crawl",
            "web": {"site_scale": "0.05"},   # quoted number
            "crawler": {"kind": "incremental"},
        }))
        assert main(["run-spec", str(path)]) == 2
        assert "invalid experiment spec" in capsys.readouterr().err

    def test_run_spec_bad_scenario_params_fail_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad_params.json"
        path.write_text(json.dumps({"name": "x", "kind": "scenario",
                                    "scenario": "sensitivity",
                                    "params": {"bogus": 1}}))
        assert main(["run-spec", str(path)]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_run_matrix_crawl_sweep(self, tmp_path, capsys):
        matrix = {
            "name": "test/sweep",
            "base": {
                "name": "cell", "kind": "crawl",
                "web": {"site_scale": 0.03, "pages_per_site": 10,
                        "horizon_days": 30.0, "seed": 3},
                "crawler": {"kind": "incremental", "collection_capacity": 25,
                            "crawl_budget_per_day": 80.0, "duration_days": 3.0},
            },
            "axes": {"crawler.crawl_budget_per_day": [60.0, 120.0]},
        }
        path = tmp_path / "matrix.json"
        path.write_text(json.dumps(matrix))
        out = tmp_path / "result.json"
        assert main(["run-matrix", str(path), "--out", str(out)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "test/sweep"
        assert len(payload["cells"]) == 2
        budgets = [60.0, 120.0]
        for cell, budget in zip(payload["cells"], budgets):
            assert f"crawl_budget_per_day={budget}" in cell["name"]
            assert cell["summary"]["pages_crawled"] > 0
        assert json.loads(out.read_text()) == payload

    def test_run_matrix_invalid_file_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"axes": {"params.x": [1]}}))
        assert main(["run-matrix", str(path)]) == 2
        assert "base" in capsys.readouterr().err

    def test_run_matrix_bad_axis_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad_axis.json"
        path.write_text(json.dumps({
            "base": {"name": "x", "kind": "scenario", "scenario": "table2",
                     "params": {"simulate": False}},
            "axes": {"bogus.path": [1, 2]},
        }))
        assert main(["run-matrix", str(path)]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_every_subcommand_smokes(self, capsys, tmp_path):
        """Each subcommand exits 0 and prints something on a tiny web."""
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(
            {"name": "smoke", "kind": "scenario", "scenario": "sensitivity"}
        ))
        invocations = [
            FAST_WEB_ARGS + ["web-stats"],
            FAST_WEB_ARGS + ["run-experiment", "--days", "15"],
            FAST_WEB_ARGS + ["run-crawler", "--capacity", "30", "--budget", "90",
                             "--duration", "5"],
            ["compare-policies"],
            ["run-spec", str(spec_path)],
            ["list-scenarios"],
        ]
        for argv in invocations:
            assert main(argv) == 0, f"{argv} failed"
            assert capsys.readouterr().out.strip(), f"{argv} printed nothing"
