"""Tests for empirical freshness/age metrics against the web oracle."""

import pytest

from repro.fetch.fetcher import SimulatedFetcher
from repro.freshness.metrics import collection_age, collection_freshness, time_average
from repro.storage.records import PageRecord


def record_from_fetch(fetcher, url, at):
    result = fetcher.fetch(url, at=at)
    assert result.ok
    return PageRecord(
        url=url,
        content=result.content,
        checksum=result.checksum,
        fetched_at=result.completed_at,
        first_fetched_at=result.completed_at,
        outlinks=tuple(result.outlinks),
    )


class TestCollectionFreshness:
    def test_empty_collection_has_zero_freshness(self, small_web):
        assert collection_freshness([], small_web, at=1.0) == 0.0

    def test_just_fetched_pages_are_fresh(self, small_web):
        fetcher = SimulatedFetcher(small_web, latency_days=0.0)
        records = [
            record_from_fetch(fetcher, url, at=1.0)
            for url in small_web.seed_urls()[:10]
        ]
        assert collection_freshness(records, small_web, at=1.0) == 1.0

    def test_freshness_decays_over_time(self, small_web):
        fetcher = SimulatedFetcher(small_web, latency_days=0.0)
        # Take a mix of pages, including fast-changing com pages.
        urls = [p.url for p in small_web.pages() if p.created_at == 0.0][:200]
        records = [record_from_fetch(fetcher, url, at=0.5) for url in urls]
        early = collection_freshness(records, small_web, at=1.0)
        late = collection_freshness(records, small_web, at=100.0)
        assert late < early

    def test_freshness_in_unit_interval(self, small_web):
        fetcher = SimulatedFetcher(small_web, latency_days=0.0)
        records = [
            record_from_fetch(fetcher, url, at=1.0) for url in small_web.seed_urls()
        ]
        for t in (1.0, 30.0, 100.0):
            assert 0.0 <= collection_freshness(records, small_web, at=t) <= 1.0

    def test_record_of_deleted_page_is_stale(self, small_web):
        dead = next(
            (p for p in small_web.pages()
             if p.created_at == 0.0 and p.deleted_at is not None
             and p.deleted_at < small_web.horizon_days - 2),
            None,
        )
        if dead is None:
            pytest.skip("no dead page available")
        fetcher = SimulatedFetcher(small_web, latency_days=0.0)
        record = record_from_fetch(fetcher, dead.url, at=0.5)
        after_death = dead.deleted_at + 1.0
        assert collection_freshness([record], small_web, at=after_death) == 0.0

    def test_unknown_url_counts_as_stale(self, small_web):
        record = PageRecord(
            url="http://not-in-web/",
            content="x",
            checksum="x",
            fetched_at=1.0,
            first_fetched_at=1.0,
        )
        assert collection_freshness([record], small_web, at=2.0) == 0.0


class TestCollectionAge:
    def test_empty_collection(self, small_web):
        assert collection_age([], small_web, at=1.0) == 0.0

    def test_fresh_records_have_zero_age(self, small_web):
        fetcher = SimulatedFetcher(small_web, latency_days=0.0)
        static_urls = [
            p.url for p in small_web.pages()
            if p.change_process.mean_rate == 0.0 and p.lifespan is None
            and p.created_at == 0.0
        ][:5]
        records = [record_from_fetch(fetcher, url, at=1.0) for url in static_urls]
        assert collection_age(records, small_web, at=100.0) == 0.0

    def test_age_grows_over_time_for_changing_pages(self, small_web):
        fetcher = SimulatedFetcher(small_web, latency_days=0.0)
        changing = [
            p.url for p in small_web.pages()
            if p.change_process.mean_rate >= 0.5 and p.lifespan is None
            and p.created_at == 0.0
        ][:20]
        if not changing:
            pytest.skip("no fast-changing permanent pages")
        records = [record_from_fetch(fetcher, url, at=0.5) for url in changing]
        early_age = collection_age(records, small_web, at=5.0)
        late_age = collection_age(records, small_web, at=60.0)
        assert late_age > early_age
        assert early_age >= 0.0


class TestTimeAverage:
    def test_empty(self):
        assert time_average([]) == 0.0

    def test_single_sample(self):
        assert time_average([(0.0, 0.7)]) == 0.7

    def test_piecewise_constant(self):
        samples = [(0.0, 1.0), (1.0, 0.0), (3.0, 0.0)]
        # 1.0 for one unit of time, 0.0 for two units.
        assert time_average(samples) == pytest.approx(1.0 / 3.0)

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            time_average([(1.0, 0.5), (0.0, 0.5)])

    def test_all_same_time(self):
        assert time_average([(1.0, 0.2), (1.0, 0.4)]) == pytest.approx(0.3)
