"""Tests for CrawlModule, UpdateModule and RankingModule."""

import pytest

from repro.core.allurls import AllUrls
from repro.core.collurls import CollUrls
from repro.core.crawl_module import CrawlModule
from repro.core.ranking_module import RankingModule, RankingModuleConfig
from repro.core.update_module import UpdateModule, UpdateModuleConfig
from repro.fetch.fetcher import SimulatedFetcher
from repro.storage.collection import InPlaceCollection


def build_crawl_module(web, capacity=None):
    fetcher = SimulatedFetcher(web, latency_days=0.0)
    collection = InPlaceCollection(capacity=capacity)
    allurls = AllUrls()
    return CrawlModule(fetcher, collection, allurls), collection, allurls


class TestCrawlModule:
    def test_first_crawl_stores_record(self, tiny_web):
        module, collection, allurls = build_crawl_module(tiny_web)
        url = tiny_web.seed_urls()[0]
        outcome = module.crawl(url, at=1.0)
        assert outcome.stored
        assert outcome.was_new
        assert outcome.changed
        assert collection.get_working(url) is not None

    def test_links_forwarded_to_allurls(self, tiny_web):
        module, _, allurls = build_crawl_module(tiny_web)
        url = tiny_web.seed_urls()[0]
        module.crawl(url, at=1.0)
        for link in tiny_web.page(url).outlinks:
            assert link in allurls

    def test_refetch_without_change(self, tiny_web):
        module, collection, _ = build_crawl_module(tiny_web)
        static = next(
            p.url for p in tiny_web.pages()
            if p.change_process.mean_rate == 0.0 and p.lifespan is None
            and p.created_at == 0.0
        )
        module.crawl(static, at=1.0)
        outcome = module.crawl(static, at=20.0)
        assert not outcome.changed
        assert not outcome.was_new
        assert collection.get_working(static).visit_count == 2

    def test_refetch_detects_change(self, tiny_web):
        module, collection, _ = build_crawl_module(tiny_web)
        page = next(
            p for p in tiny_web.pages()
            if p.lifespan is None and p.created_at == 0.0
            and len(p.change_process.change_times()) > 0
        )
        change_time = page.change_process.change_times()[0]
        module.crawl(page.url, at=max(0.0, change_time - 1e-3))
        outcome = module.crawl(page.url, at=change_time + 1e-3)
        assert outcome.changed
        assert collection.get_working(page.url).change_count == 1

    def test_missing_page_not_stored(self, tiny_web):
        module, collection, allurls = build_crawl_module(tiny_web)
        allurls.add("http://ghost/", 0.0)
        outcome = module.crawl("http://ghost/", at=1.0)
        assert not outcome.stored
        assert module.pages_failed == 1
        assert allurls.info("http://ghost/").last_failed_at is not None

    def test_fetch_counters(self, tiny_web):
        module, _, _ = build_crawl_module(tiny_web)
        module.crawl(tiny_web.seed_urls()[0], at=1.0)
        module.crawl("http://ghost/", at=1.0)
        assert module.pages_fetched == 1
        assert module.pages_failed == 1

    def test_discard(self, tiny_web):
        module, collection, _ = build_crawl_module(tiny_web)
        url = tiny_web.seed_urls()[0]
        module.crawl(url, at=1.0)
        assert module.discard(url) is not None
        assert collection.get_working(url) is None


class TestUpdateModule:
    def _build(self, web, estimator="ep", policy=None, budget=500.0):
        crawl_module, collection, allurls = build_crawl_module(web)
        collurls = CollUrls()
        config = UpdateModuleConfig(
            crawl_budget_per_day=budget,
            estimator=estimator,
            default_interval_days=2.0,
            reallocation_interval_days=1.0,
        )
        update = UpdateModule(collurls, crawl_module, config, revisit_policy=policy)
        return update, collurls, collection

    def test_process_next_on_empty_queue(self, tiny_web):
        update, collurls, _ = self._build(tiny_web)
        assert update.process_next(at=1.0) is None

    def test_processed_url_is_rescheduled(self, tiny_web):
        update, collurls, _ = self._build(tiny_web)
        url = tiny_web.seed_urls()[0]
        collurls.schedule(url, 0.0)
        outcome = update.process_next(at=1.0)
        assert outcome is not None
        assert url in collurls
        assert collurls.scheduled_time(url) > 1.0

    def test_missing_page_is_dropped(self, tiny_web):
        update, collurls, collection = self._build(tiny_web)
        collurls.schedule("http://ghost/", 0.0)
        update.process_next(at=1.0)
        assert "http://ghost/" not in collurls
        assert collection.get_working("http://ghost/") is None

    def test_change_history_accumulates(self, tiny_web):
        update, collurls, _ = self._build(tiny_web)
        url = tiny_web.seed_urls()[0]
        collurls.schedule(url, 0.0)
        time = 0.5
        for _ in range(5):
            update.process_next(at=time)
            time += 1.0
        history = update.history(url)
        assert history is not None
        assert history.n_visits == 4  # first visit establishes the baseline

    def test_rate_estimate_appears_after_revisits(self, tiny_web):
        update, collurls, _ = self._build(tiny_web)
        fast_url = next(
            p.url for p in tiny_web.pages()
            if p.change_process.mean_rate >= 1.0 and p.lifespan is None
            and p.created_at == 0.0
        )
        collurls.schedule(fast_url, 0.0)
        time = 0.5
        for _ in range(10):
            update.process_next(at=time)
            time += 1.0
        estimate = update.estimated_rate(fast_url)
        assert estimate is not None
        assert estimate > 0.1

    def test_eb_estimator_mode(self, tiny_web):
        update, collurls, _ = self._build(tiny_web, estimator="eb")
        url = tiny_web.seed_urls()[0]
        collurls.schedule(url, 0.0)
        time = 0.5
        for _ in range(5):
            update.process_next(at=time)
            time += 1.0
        assert update.estimated_rate(url) is not None

    def test_changes_detected_counter(self, tiny_web):
        update, collurls, _ = self._build(tiny_web)
        fast_url = next(
            p.url for p in tiny_web.pages()
            if p.change_process.mean_rate >= 1.0 and p.lifespan is None
            and p.created_at == 0.0
        )
        collurls.schedule(fast_url, 0.0)
        time = 0.5
        for _ in range(10):
            update.process_next(at=time)
            time += 2.0
        assert update.changes_detected > 0

    def test_forget(self, tiny_web):
        update, collurls, _ = self._build(tiny_web)
        url = tiny_web.seed_urls()[0]
        collurls.schedule(url, 0.0)
        update.process_next(at=1.0)
        update.forget(url)
        assert update.history(url) is None

    def test_set_importance_accepted(self, tiny_web):
        update, _, _ = self._build(tiny_web)
        update.set_importance({"http://a/": 0.5})

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            UpdateModuleConfig(crawl_budget_per_day=0.0)
        with pytest.raises(ValueError):
            UpdateModuleConfig(estimator="bogus")
        with pytest.raises(ValueError):
            UpdateModuleConfig(default_interval_days=0.0)


class TestRankingModule:
    def _build(self, web, capacity=20, metric="pagerank"):
        crawl_module, collection, allurls = build_crawl_module(web, capacity=capacity)
        collurls = CollUrls()
        ranking = RankingModule(
            allurls,
            collurls,
            collection,
            crawl_module,
            RankingModuleConfig(importance_metric=metric),
            capacity=capacity,
        )
        return ranking, crawl_module, collection, allurls, collurls

    def test_admits_candidates_below_capacity(self, tiny_web):
        ranking, crawl_module, collection, allurls, collurls = self._build(tiny_web)
        seed = tiny_web.seed_urls()[0]
        crawl_module.crawl(seed, at=0.5)
        result = ranking.refine(at=1.0)
        assert result.admitted
        assert all(url in collurls for url in result.admitted)

    def test_importance_stored_on_records(self, tiny_web):
        # Capacity far above the candidate count: the scan must store
        # importance on the crawled records without the replacement logic
        # discarding them (which pages win replacement depends on the
        # generated web's link structure, not what this test pins).
        ranking, crawl_module, collection, _, _ = self._build(tiny_web, capacity=500)
        for url in tiny_web.seed_urls()[:5]:
            crawl_module.crawl(url, at=0.5)
        ranking.refine(at=1.0)
        assert collection.working_records()
        assert any(r.importance > 0 for r in collection.working_records())

    def test_replacement_at_capacity(self, tiny_web):
        capacity = 5
        ranking, crawl_module, collection, allurls, collurls = self._build(
            tiny_web, capacity=capacity
        )
        # Fill the collection with deep, unimportant pages of one site.
        site = tiny_web.sites[0]
        deep_pages = sorted(site.all_pages, key=lambda p: -p.depth)[:capacity]
        for page in deep_pages:
            crawl_module.crawl(page.url, at=0.5)
            collurls.schedule(page.url, 10.0)
        # Make the crawler aware of every root page (heavily linked).
        for root in tiny_web.seed_urls():
            allurls.add(root, 0.6)
            for i, source in enumerate(deep_pages):
                allurls.record_link(source.url, root, 0.6)
        result = ranking.refine(at=1.0)
        assert ranking.pages_replaced >= 0
        total_tracked = len(collection.working_records()) + sum(
            1 for url in collurls.urls() if collection.get_working(url) is None
        )
        assert total_tracked <= capacity + len(result.admitted)

    def test_hits_metric_mode(self, tiny_web):
        ranking, crawl_module, _, _, _ = self._build(tiny_web, metric="hits")
        for url in tiny_web.seed_urls()[:3]:
            crawl_module.crawl(url, at=0.5)
        result = ranking.refine(at=1.0)
        assert isinstance(result.importance, dict)

    def test_empty_collection_refine(self, tiny_web):
        ranking, _, _, _, _ = self._build(tiny_web)
        result = ranking.refine(at=1.0)
        assert result.importance == {}
        assert result.replacements == ()

    def test_importance_of_collection(self, tiny_web):
        ranking, crawl_module, _, _, _ = self._build(tiny_web)
        seed = tiny_web.seed_urls()[0]
        crawl_module.crawl(seed, at=0.5)
        ranking.refine(at=1.0)
        assert seed in ranking.importance_of_collection()

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            RankingModuleConfig(importance_metric="bogus")
        with pytest.raises(ValueError):
            RankingModuleConfig(max_replacements_per_scan=-1)
        with pytest.raises(ValueError):
            RankingModuleConfig(replacement_margin=-0.5)
        with pytest.raises(ValueError):
            RankingModuleConfig(damping=1.5)
