"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.histograms import CHANGE_INTERVAL_BUCKETS, BucketedHistogram
from repro.core.collurls import CollUrls
from repro.estimation.bayesian_estimator import BayesianClassEstimator
from repro.estimation.change_history import ChangeHistory
from repro.estimation.poisson_estimator import corrected_rate_estimate
from repro.freshness.analytic import (
    CrawlMode,
    CrawlPolicy,
    UpdateMode,
    expected_freshness_periodic,
    freshness_at,
    time_averaged_freshness,
)
from repro.freshness.optimal_allocation import (
    optimal_revisit_frequencies,
    page_freshness,
    total_freshness,
    uniform_revisit_frequencies,
)
from repro.ranking.pagerank import pagerank
from repro.simweb.change_models import PoissonChangeProcess
from repro.storage.inverted_index import InvertedIndex
from repro.storage.repository import Repository
from repro.storage.records import PageRecord

# Strategies -------------------------------------------------------------- #

rates = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)
positive_rates = st.floats(min_value=1e-4, max_value=50.0, allow_nan=False)
intervals = st.floats(min_value=1e-3, max_value=1e4, allow_nan=False)
small_texts = st.text(alphabet="abcdefg ", min_size=0, max_size=40)


class TestFreshnessProperties:
    @given(rate=rates, interval=intervals)
    def test_periodic_freshness_in_unit_interval(self, rate, interval):
        value = expected_freshness_periodic(rate, interval)
        assert 0.0 <= value <= 1.0

    @given(rate=positive_rates, interval=intervals)
    def test_periodic_freshness_decreases_with_interval(self, rate, interval):
        shorter = expected_freshness_periodic(rate, interval)
        longer = expected_freshness_periodic(rate, interval * 2.0)
        assert longer <= shorter + 1e-12

    @given(
        rate=rates,
        t=st.floats(min_value=0.0, max_value=300.0),
        cycle=st.floats(min_value=1.0, max_value=90.0),
        batch_fraction=st.floats(min_value=0.05, max_value=1.0),
        crawl_mode=st.sampled_from(list(CrawlMode)),
        update_mode=st.sampled_from(list(UpdateMode)),
        collection=st.sampled_from(["current", "crawler"]),
    )
    def test_instantaneous_freshness_in_unit_interval(
        self, rate, t, cycle, batch_fraction, crawl_mode, update_mode, collection
    ):
        policy = CrawlPolicy(
            crawl_mode, update_mode, cycle_days=cycle,
            batch_duration_days=cycle * batch_fraction,
        )
        value = freshness_at(policy, t, rate, collection)
        assert 0.0 <= value <= 1.0 + 1e-12

    @given(
        rate=rates,
        cycle=st.floats(min_value=1.0, max_value=90.0),
        batch_fraction=st.floats(min_value=0.05, max_value=1.0),
    )
    def test_in_place_never_worse_than_shadowing(self, rate, cycle, batch_fraction):
        """A structural claim of Section 4: freshness of the current
        collection is always at least as high without shadowing."""
        for crawl_mode in CrawlMode:
            in_place = CrawlPolicy(
                crawl_mode, UpdateMode.IN_PLACE, cycle, cycle * batch_fraction
            )
            shadow = CrawlPolicy(
                crawl_mode, UpdateMode.SHADOW, cycle, cycle * batch_fraction
            )
            assert time_averaged_freshness(in_place, rate) >= time_averaged_freshness(
                shadow, rate
            ) - 1e-12


class TestAllocationProperties:
    @given(
        rate_list=st.lists(rates, min_size=1, max_size=25),
        budget=st.floats(min_value=0.1, max_value=100.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_optimal_allocation_meets_budget_and_nonnegative(self, rate_list, budget):
        frequencies = optimal_revisit_frequencies(rate_list, budget)
        assert len(frequencies) == len(rate_list)
        assert all(f >= 0 for f in frequencies)
        if any(r > 1e-9 for r in rate_list):
            assert sum(frequencies) == pytest.approx(budget, rel=1e-3)

    @given(
        rate_list=st.lists(positive_rates, min_size=2, max_size=15),
        budget=st.floats(min_value=0.5, max_value=50.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_optimal_at_least_as_good_as_uniform(self, rate_list, budget):
        optimal = total_freshness(
            rate_list, optimal_revisit_frequencies(rate_list, budget)
        )
        uniform = total_freshness(
            rate_list, uniform_revisit_frequencies(rate_list, budget)
        )
        assert optimal >= uniform - 1e-6

    @given(rate=rates, frequency=st.floats(min_value=0.0, max_value=100.0))
    def test_page_freshness_bounded(self, rate, frequency):
        assert 0.0 <= page_freshness(rate, frequency) <= 1.0


class TestEstimatorProperties:
    @given(
        n_visits=st.integers(min_value=1, max_value=500),
        data=st.data(),
        interval=st.floats(min_value=0.1, max_value=30.0),
    )
    def test_corrected_estimate_nonnegative_and_finite(self, n_visits, data, interval):
        n_changes = data.draw(st.integers(min_value=0, max_value=n_visits))
        estimate = corrected_rate_estimate(n_visits, n_changes, interval)
        assert estimate >= 0.0
        assert math.isfinite(estimate)

    @given(
        n_visits=st.integers(min_value=2, max_value=200),
        data=st.data(),
    )
    def test_corrected_estimate_monotone_in_changes(self, n_visits, data):
        fewer = data.draw(st.integers(min_value=0, max_value=n_visits - 1))
        estimate_low = corrected_rate_estimate(n_visits, fewer, 1.0)
        estimate_high = corrected_rate_estimate(n_visits, fewer + 1, 1.0)
        assert estimate_high > estimate_low

    @given(
        observations=st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=40.0),
                st.booleans(),
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_bayesian_posterior_stays_normalised(self, observations):
        estimator = BayesianClassEstimator()
        for interval, changed in observations:
            estimator.observe(interval, changed)
        assert sum(estimator.posterior().values()) == pytest.approx(1.0)
        assert all(0.0 <= p <= 1.0 for p in estimator.posterior().values())

    @given(
        interval_list=st.lists(
            st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=50
        ),
        data=st.data(),
    )
    def test_change_history_summary_consistency(self, interval_list, data):
        changes = data.draw(
            st.lists(st.booleans(), min_size=len(interval_list), max_size=len(interval_list))
        )
        history = ChangeHistory(first_visit=0.0)
        time = 0.0
        for interval, changed in zip(interval_list, changes):
            time += interval
            history.record_visit(time, changed)
        assert history.n_visits == len(interval_list)
        assert history.n_changes == sum(changes)
        assert history.observation_time == pytest.approx(sum(interval_list))


class TestChangeProcessProperties:
    @given(
        rate=st.floats(min_value=0.0, max_value=5.0),
        horizon=st.floats(min_value=1.0, max_value=200.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        t0=st.floats(min_value=0.0, max_value=200.0),
        t1=st.floats(min_value=0.0, max_value=200.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_change_counts_additive_and_monotone(self, rate, horizon, seed, t0, t1):
        assume(t0 <= t1)
        process = PoissonChangeProcess(rate)
        process.materialise(horizon, np.random.default_rng(seed))
        assert process.changes_between(t0, t1) >= 0
        assert process.version_at(t1) >= process.version_at(t0)
        assert process.version_at(t1) == process.version_at(t0) + process.changes_between(t0, t1)


class TestCollUrlsProperties:
    @given(
        entries=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=30),
                st.floats(min_value=0.0, max_value=100.0),
            ),
            min_size=1,
            max_size=80,
        )
    )
    def test_pop_order_is_nondecreasing_in_final_schedule(self, entries):
        queue = CollUrls()
        final_time = {}
        for key, time in entries:
            url = f"http://page{key}/"
            queue.schedule(url, time)
            final_time[url] = time
        popped = []
        while True:
            head = queue.pop()
            if head is None:
                break
            popped.append(head)
        assert len(popped) == len(final_time)
        times = [time for _, time in popped]
        assert all(a <= b + 1e-12 for a, b in zip(times, times[1:]))
        for url, time in popped:
            assert final_time[url] == time


class TestHistogramProperties:
    @given(values=st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=200))
    def test_fractions_sum_to_one_or_zero(self, values):
        histogram = BucketedHistogram(CHANGE_INTERVAL_BUCKETS)
        histogram.add_many(values)
        total = sum(histogram.fractions())
        if values:
            assert total == pytest.approx(1.0)
        else:
            assert total == 0.0
        assert sum(histogram.counts()) == len(values)


class TestPageRankProperties:
    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 12), st.integers(0, 12)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_pagerank_is_a_probability_distribution(self, edges):
        graph = {}
        for source, target in edges:
            graph.setdefault(f"n{source}", []).append(f"n{target}")
        scores = pagerank(graph)
        assert sum(scores.values()) == pytest.approx(1.0)
        assert all(score >= 0 for score in scores.values())


class TestRepositoryProperties:
    @given(
        operations=st.lists(
            st.tuples(st.sampled_from(["save", "discard"]), st.integers(0, 15)),
            max_size=60,
        ),
        capacity=st.integers(min_value=1, max_value=10),
    )
    def test_capacity_never_exceeded(self, operations, capacity):
        repository = Repository(capacity=capacity)
        for operation, key in operations:
            url = f"http://page{key}/"
            if operation == "save" and url not in repository:
                if not repository.is_full:
                    repository.save(
                        PageRecord(
                            url=url, content="c", checksum="s",
                            fetched_at=1.0, first_fetched_at=1.0,
                        )
                    )
            elif operation == "discard" and url in repository:
                repository.discard(url)
            assert len(repository) <= capacity


class TestInvertedIndexProperties:
    @given(
        documents=st.lists(
            st.tuples(st.integers(0, 10), small_texts), max_size=40
        )
    )
    def test_search_returns_only_indexed_documents(self, documents):
        index = InvertedIndex()
        live = {}
        for key, text in documents:
            doc_id = f"d{key}"
            index.add_document(doc_id, text)
            live[doc_id] = text
        assert index.n_documents == len(live)
        results = index.search("a b c d e f g", limit=None)
        for doc_id, score in results:
            assert doc_id in live
            assert score > 0
