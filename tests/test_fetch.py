"""Tests for the fetch substrate: checksums, politeness, robots, fetcher."""

import pytest

from repro.fetch.checksum import checksums_differ, page_checksum
from repro.fetch.fetcher import FetchStatus, SimulatedFetcher
from repro.fetch.politeness import NightWindow, PolitenessPolicy, seconds_to_days
from repro.fetch.robots import RobotsRules


class TestChecksum:
    def test_equal_content_equal_checksum(self):
        assert page_checksum("hello world") == page_checksum("hello world")

    def test_different_content_different_checksum(self):
        assert page_checksum("a") != page_checksum("b")

    def test_checksums_differ_helper(self):
        assert checksums_differ("x", "y")
        assert not checksums_differ("x", "x")

    def test_unicode_content(self):
        assert isinstance(page_checksum("café ☕"), str)


class TestNightWindow:
    def test_default_is_9pm_to_6am(self):
        window = NightWindow()
        assert window.is_open(0.95)   # 10:48 PM
        assert window.is_open(0.1)    # 2:24 AM
        assert not window.is_open(0.5)  # noon

    def test_next_open_when_already_open(self):
        window = NightWindow()
        assert window.next_open(0.9) == 0.9

    def test_next_open_defers_to_window_start(self):
        window = NightWindow()
        assert window.next_open(0.5) == pytest.approx(0.875)

    def test_next_open_crosses_to_next_day(self):
        window = NightWindow(start_fraction=0.1, duration_fraction=0.1)
        assert window.next_open(0.5) == pytest.approx(1.1)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            NightWindow(start_fraction=1.5)
        with pytest.raises(ValueError):
            NightWindow(duration_fraction=0.0)


class TestPolitenessPolicy:
    def test_seconds_to_days(self):
        assert seconds_to_days(86400) == 1.0

    def test_min_delay_between_requests(self):
        policy = PolitenessPolicy(min_delay_seconds=10.0)
        first = policy.earliest_allowed("site", 0.0)
        policy.record_request("site", first)
        second = policy.earliest_allowed("site", first)
        assert second - first == pytest.approx(10.0 / 86400.0)

    def test_different_sites_independent(self):
        policy = PolitenessPolicy(min_delay_seconds=10.0)
        policy.record_request("a", 0.0)
        assert policy.earliest_allowed("b", 0.0) == 0.0

    def test_no_delay_needed_after_long_gap(self):
        policy = PolitenessPolicy(min_delay_seconds=10.0)
        policy.record_request("a", 0.0)
        assert policy.earliest_allowed("a", 1.0) == 1.0

    def test_night_window_defers_requests(self):
        policy = PolitenessPolicy(min_delay_seconds=0.0, night_window=NightWindow())
        assert policy.earliest_allowed("a", 0.5) == pytest.approx(0.875)

    def test_max_requests_per_day_matches_paper(self):
        """10 s delay, 9 h nightly window -> roughly 3,000 pages per day."""
        policy = PolitenessPolicy(min_delay_seconds=10.0, night_window=NightWindow())
        assert 3000 <= policy.max_requests_per_day() <= 3500

    def test_unbounded_without_delay(self):
        policy = PolitenessPolicy(min_delay_seconds=0.0)
        assert policy.max_requests_per_day() == float("inf")

    def test_reset(self):
        policy = PolitenessPolicy(min_delay_seconds=10.0)
        policy.record_request("a", 0.0)
        policy.reset()
        assert policy.earliest_allowed("a", 0.0) == 0.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            PolitenessPolicy(min_delay_seconds=-1.0)


class TestNightWindowBoundaries:
    """Float-edge behaviour at window boundaries (satellite regression)."""

    def test_next_open_result_is_always_open(self):
        # 0.3 is not binary-representable: floor(t) + 0.3 can round a few
        # ulps below the window start, where the naive snap would return a
        # closed instant. next_open must nudge up to the first open one.
        window = NightWindow(start_fraction=0.3, duration_fraction=0.2)
        for day in range(60):
            t = day + 0.25  # closed: before the window opens
            snapped = window.next_open(t)
            assert window.is_open(snapped)
            assert snapped >= t

    def test_next_open_at_exact_window_start(self):
        window = NightWindow(start_fraction=0.875, duration_fraction=0.375)
        assert window.next_open(3.875) == 3.875
        assert window.is_open(3.875)

    def test_window_end_is_exclusive(self):
        window = NightWindow(start_fraction=0.25, duration_fraction=0.25)
        assert window.is_open(0.25)
        assert not window.is_open(0.5)
        snapped = window.next_open(0.5)
        assert snapped == 1.25
        assert window.is_open(snapped)

    def test_is_open_array_matches_scalar(self):
        import numpy as np

        for start, duration in [(0.875, 0.375), (0.3, 0.2), (0.1, 0.1)]:
            window = NightWindow(start_fraction=start, duration_fraction=duration)
            rng = np.random.default_rng(5)
            times = np.concatenate(
                [
                    rng.uniform(0.0, 30.0, size=500),
                    # Exact boundary instants and their ulp neighbours.
                    np.array(
                        [
                            d + start
                            for d in range(10)
                        ]
                    ),
                    np.array(
                        [
                            np.nextafter(d + start, -np.inf)
                            for d in range(10)
                        ]
                    ),
                ]
            )
            batch = window.is_open_array(times)
            for t, open_batch in zip(times.tolist(), batch.tolist()):
                assert open_batch == window.is_open(t)

    def test_next_open_array_matches_scalar(self):
        import numpy as np

        for start, duration in [(0.875, 0.375), (0.3, 0.2), (0.7, 0.05)]:
            window = NightWindow(start_fraction=start, duration_fraction=duration)
            rng = np.random.default_rng(7)
            times = rng.uniform(0.0, 30.0, size=1000)
            batch = window.next_open_array(times)
            for t, snapped in zip(times.tolist(), batch.tolist()):
                assert snapped == window.next_open(t)
                assert window.is_open(snapped)


class TestPolitenessBatchResolution:
    """The batch politeness API must replay the scalar recurrence exactly."""

    @staticmethod
    def _scalar_fold(policy, sites, times):
        starts = []
        for site, t in zip(sites, times):
            if site is None:
                starts.append(t)
                continue
            start = policy.earliest_allowed(site, t)
            policy.record_request(site, start)
            starts.append(start)
        return starts

    def _assert_batch_matches_scalar(self, make_policy, sites, times):
        batch_policy = make_policy()
        scalar_policy = make_policy()
        batch = batch_policy.earliest_allowed_many(sites, times)
        batch_policy.record_requests(sites, batch)
        scalar = self._scalar_fold(scalar_policy, sites, times)
        assert batch.tolist() == scalar
        assert batch_policy._last_request == scalar_policy._last_request

    def test_exact_min_delay_gap_is_allowed(self):
        policy = PolitenessPolicy(min_delay_seconds=10.0)
        delay = policy.min_delay_days
        policy.record_request("a", 1.0)
        # A request at exactly last + delay goes out untouched, both
        # scalar and batched.
        assert policy.earliest_allowed("a", 1.0 + delay) == 1.0 + delay
        batch = policy.earliest_allowed_many(["a"], [1.0 + delay])
        assert batch.tolist() == [1.0 + delay]

    def test_batch_matches_scalar_with_delay(self):
        import numpy as np

        rng = np.random.default_rng(11)
        sites = [f"s{int(i)}" for i in rng.integers(0, 5, size=200)]
        times = np.sort(rng.uniform(0.0, 0.05, size=200)).tolist()
        self._assert_batch_matches_scalar(
            lambda: PolitenessPolicy(min_delay_seconds=30.0), sites, times
        )

    def test_batch_matches_scalar_with_night_window(self):
        import numpy as np

        rng = np.random.default_rng(13)
        sites = [f"s{int(i)}" for i in rng.integers(0, 4, size=150)]
        times = np.sort(rng.uniform(0.0, 3.0, size=150)).tolist()
        self._assert_batch_matches_scalar(
            lambda: PolitenessPolicy(
                min_delay_seconds=0.0, night_window=NightWindow()
            ),
            sites,
            times,
        )

    def test_batch_matches_scalar_with_both_and_awkward_window(self):
        import numpy as np

        rng = np.random.default_rng(17)
        sites = [f"s{int(i)}" for i in rng.integers(0, 3, size=150)]
        sites = [None if i % 29 == 0 else s for i, s in enumerate(sites)]
        times = np.sort(rng.uniform(0.0, 2.0, size=150)).tolist()
        self._assert_batch_matches_scalar(
            lambda: PolitenessPolicy(
                min_delay_seconds=1800.0,
                night_window=NightWindow(start_fraction=0.3, duration_fraction=0.2),
            ),
            sites,
            times,
        )

    def test_batch_at_exact_boundary_instants(self):
        """Request times sitting exactly on last + delay and exactly on the
        window start resolve identically through both paths."""
        window = NightWindow(start_fraction=0.875, duration_fraction=0.375)
        policy = PolitenessPolicy(min_delay_seconds=10.0, night_window=window)
        delay = policy.min_delay_days
        policy.record_request("a", 0.875)
        times = [0.875 + delay, 0.875 + 2 * delay, 1.875]
        sites = ["a", "a", "a"]
        scalar_policy = PolitenessPolicy(min_delay_seconds=10.0, night_window=window)
        scalar_policy.record_request("a", 0.875)
        batch = policy.earliest_allowed_many(sites, times)
        scalar = self._scalar_fold(scalar_policy, sites, times)
        assert batch.tolist() == scalar

    def test_peek_does_not_mutate_state(self):
        policy = PolitenessPolicy(min_delay_seconds=10.0, night_window=NightWindow())
        policy.record_request("a", 0.9)
        before = dict(policy._last_request)
        policy.earliest_allowed_many(["a", "b", "a"], [0.9, 0.9, 0.9])
        assert policy._last_request == before

    def test_indexed_api_matches_string_api(self):
        """The integer-site batch API (the crawl engine's hot path) must
        resolve and commit exactly like the string API, across chunks and
        interleaved scalar records, including pre-existing state."""
        import numpy as np

        site_names = [f"s{i}" for i in range(6)]
        rng = np.random.default_rng(23)

        def make_policy():
            policy = PolitenessPolicy(
                min_delay_seconds=1800.0,
                night_window=NightWindow(start_fraction=0.3, duration_fraction=0.2),
            )
            policy.record_request("s1", 0.05)  # state predating the mirror
            return policy

        indexed = make_policy()
        stringed = make_policy()
        t = 0.1
        for chunk_size in (1, 7, 40, 3, 25):
            idx = rng.integers(-1, 6, size=chunk_size)
            times = np.sort(rng.uniform(t, t + 0.4, size=chunk_size))
            t = float(times[-1])
            sites = [site_names[i] if i >= 0 else None for i in idx.tolist()]
            got = indexed.earliest_allowed_many_indexed(
                idx.astype(np.int64), site_names, times
            )
            want = stringed.earliest_allowed_many(sites, times)
            assert got.tolist() == want.tolist()
            cut = chunk_size // 2 + 1  # commit a prefix, drop the tail
            indexed.record_requests_indexed(idx[:cut].astype(np.int64), got[:cut])
            stringed.record_requests(sites[:cut], want[:cut])
            assert indexed._last_request == stringed._last_request
            # Scalar records (the m==1 fast path) must keep the dense
            # mirror in sync with the dict.
            indexed.record_request("s2", t)
            stringed.record_request("s2", t)
        assert indexed._last_request == stringed._last_request


class TestRobotsRules:
    def test_excluded_site(self):
        rules = RobotsRules(excluded_sites=["bad.com"])
        assert not rules.is_allowed("bad.com", "http://bad.com/page")
        assert rules.is_allowed("good.com", "http://good.com/page")

    def test_disallowed_prefix(self):
        rules = RobotsRules(disallowed_prefixes={"s.com": ["/private"]})
        assert not rules.is_allowed("s.com", "http://s.com/private/page")
        assert rules.is_allowed("s.com", "http://s.com/public/page")

    def test_dynamic_rules(self):
        rules = RobotsRules()
        rules.exclude_site("x.com")
        rules.disallow("y.com", "/admin")
        assert not rules.is_allowed("x.com", "http://x.com/")
        assert not rules.is_allowed("y.com", "http://y.com/admin/panel")

    def test_url_without_path(self):
        rules = RobotsRules(disallowed_prefixes={"s.com": ["/x"]})
        assert rules.is_allowed("s.com", "http://s.com")


class TestSimulatedFetcher:
    def test_fetch_live_page(self, small_web):
        fetcher = SimulatedFetcher(small_web)
        url = small_web.seed_urls()[0]
        result = fetcher.fetch(url, at=1.0)
        assert result.ok
        assert result.status is FetchStatus.OK
        assert result.checksum
        assert result.content

    def test_fetch_unknown_url(self, small_web):
        fetcher = SimulatedFetcher(small_web)
        result = fetcher.fetch("http://nonexistent/", at=1.0)
        assert not result.ok
        assert result.status is FetchStatus.NOT_FOUND

    def test_fetch_dead_page(self, small_web):
        fetcher = SimulatedFetcher(small_web)
        dead = next(
            (p for p in small_web.pages() if p.deleted_at is not None
             and p.deleted_at < small_web.horizon_days - 1),
            None,
        )
        if dead is None:
            pytest.skip("no dead page in the small web")
        result = fetcher.fetch(dead.url, at=dead.deleted_at + 0.5)
        assert result.status is FetchStatus.NOT_FOUND

    def test_checksum_stable_without_change(self, small_web):
        fetcher = SimulatedFetcher(small_web)
        static = next(
            p for p in small_web.pages()
            if p.change_process.mean_rate == 0.0 and p.created_at == 0.0
            and p.lifespan is None
        )
        first = fetcher.fetch(static.url, at=1.0)
        second = fetcher.fetch(static.url, at=50.0)
        assert first.checksum == second.checksum

    def test_checksum_changes_when_page_changes(self, small_web):
        fetcher = SimulatedFetcher(small_web)
        changing = next(
            p for p in small_web.pages()
            if p.created_at == 0.0 and p.lifespan is None
            and len(p.change_process.change_times()) > 0
        )
        change_time = changing.change_process.change_times()[0]
        before = fetcher.fetch(changing.url, at=max(0.0, change_time - 1e-3))
        after = fetcher.fetch(changing.url, at=change_time + 1e-3)
        assert before.checksum != after.checksum

    def test_latency_charged(self, small_web):
        fetcher = SimulatedFetcher(small_web, latency_days=0.01)
        result = fetcher.fetch(small_web.seed_urls()[0], at=1.0)
        assert result.completed_at == pytest.approx(1.01)

    def test_politeness_applied(self, small_web):
        from repro.fetch.politeness import PolitenessPolicy

        policy = PolitenessPolicy(min_delay_seconds=3600.0)
        fetcher = SimulatedFetcher(small_web, politeness=policy, latency_days=0.0)
        url = small_web.seed_urls()[0]
        fetcher.fetch(url, at=1.0)
        second = fetcher.fetch(url, at=1.0)
        assert second.completed_at >= 1.0 + 3600.0 / 86400.0 - 1e-9

    def test_robots_exclusion(self, small_web):
        site_id = small_web.sites[0].site_id
        rules = RobotsRules(excluded_sites=[site_id])
        fetcher = SimulatedFetcher(small_web, robots=rules)
        url = small_web.site(site_id).root_url
        result = fetcher.fetch(url, at=1.0)
        assert result.status is FetchStatus.EXCLUDED

    def test_fetch_count_increments(self, small_web):
        fetcher = SimulatedFetcher(small_web)
        fetcher.fetch(small_web.seed_urls()[0], at=1.0)
        fetcher.fetch(small_web.seed_urls()[1], at=1.0)
        assert fetcher.fetch_count == 2

    def test_outlinks_forwarded(self, small_web):
        fetcher = SimulatedFetcher(small_web)
        url = small_web.seed_urls()[0]
        result = fetcher.fetch(url, at=1.0)
        assert tuple(result.outlinks) == tuple(small_web.page(url).outlinks)

    def test_invalid_latency(self, small_web):
        with pytest.raises(ValueError):
            SimulatedFetcher(small_web, latency_days=-1.0)
