"""Tests for the fetch substrate: checksums, politeness, robots, fetcher."""

import pytest

from repro.fetch.checksum import checksums_differ, page_checksum
from repro.fetch.fetcher import FetchStatus, SimulatedFetcher
from repro.fetch.politeness import NightWindow, PolitenessPolicy, seconds_to_days
from repro.fetch.robots import RobotsRules


class TestChecksum:
    def test_equal_content_equal_checksum(self):
        assert page_checksum("hello world") == page_checksum("hello world")

    def test_different_content_different_checksum(self):
        assert page_checksum("a") != page_checksum("b")

    def test_checksums_differ_helper(self):
        assert checksums_differ("x", "y")
        assert not checksums_differ("x", "x")

    def test_unicode_content(self):
        assert isinstance(page_checksum("café ☕"), str)


class TestNightWindow:
    def test_default_is_9pm_to_6am(self):
        window = NightWindow()
        assert window.is_open(0.95)   # 10:48 PM
        assert window.is_open(0.1)    # 2:24 AM
        assert not window.is_open(0.5)  # noon

    def test_next_open_when_already_open(self):
        window = NightWindow()
        assert window.next_open(0.9) == 0.9

    def test_next_open_defers_to_window_start(self):
        window = NightWindow()
        assert window.next_open(0.5) == pytest.approx(0.875)

    def test_next_open_crosses_to_next_day(self):
        window = NightWindow(start_fraction=0.1, duration_fraction=0.1)
        assert window.next_open(0.5) == pytest.approx(1.1)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            NightWindow(start_fraction=1.5)
        with pytest.raises(ValueError):
            NightWindow(duration_fraction=0.0)


class TestPolitenessPolicy:
    def test_seconds_to_days(self):
        assert seconds_to_days(86400) == 1.0

    def test_min_delay_between_requests(self):
        policy = PolitenessPolicy(min_delay_seconds=10.0)
        first = policy.earliest_allowed("site", 0.0)
        policy.record_request("site", first)
        second = policy.earliest_allowed("site", first)
        assert second - first == pytest.approx(10.0 / 86400.0)

    def test_different_sites_independent(self):
        policy = PolitenessPolicy(min_delay_seconds=10.0)
        policy.record_request("a", 0.0)
        assert policy.earliest_allowed("b", 0.0) == 0.0

    def test_no_delay_needed_after_long_gap(self):
        policy = PolitenessPolicy(min_delay_seconds=10.0)
        policy.record_request("a", 0.0)
        assert policy.earliest_allowed("a", 1.0) == 1.0

    def test_night_window_defers_requests(self):
        policy = PolitenessPolicy(min_delay_seconds=0.0, night_window=NightWindow())
        assert policy.earliest_allowed("a", 0.5) == pytest.approx(0.875)

    def test_max_requests_per_day_matches_paper(self):
        """10 s delay, 9 h nightly window -> roughly 3,000 pages per day."""
        policy = PolitenessPolicy(min_delay_seconds=10.0, night_window=NightWindow())
        assert 3000 <= policy.max_requests_per_day() <= 3500

    def test_unbounded_without_delay(self):
        policy = PolitenessPolicy(min_delay_seconds=0.0)
        assert policy.max_requests_per_day() == float("inf")

    def test_reset(self):
        policy = PolitenessPolicy(min_delay_seconds=10.0)
        policy.record_request("a", 0.0)
        policy.reset()
        assert policy.earliest_allowed("a", 0.0) == 0.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            PolitenessPolicy(min_delay_seconds=-1.0)


class TestRobotsRules:
    def test_excluded_site(self):
        rules = RobotsRules(excluded_sites=["bad.com"])
        assert not rules.is_allowed("bad.com", "http://bad.com/page")
        assert rules.is_allowed("good.com", "http://good.com/page")

    def test_disallowed_prefix(self):
        rules = RobotsRules(disallowed_prefixes={"s.com": ["/private"]})
        assert not rules.is_allowed("s.com", "http://s.com/private/page")
        assert rules.is_allowed("s.com", "http://s.com/public/page")

    def test_dynamic_rules(self):
        rules = RobotsRules()
        rules.exclude_site("x.com")
        rules.disallow("y.com", "/admin")
        assert not rules.is_allowed("x.com", "http://x.com/")
        assert not rules.is_allowed("y.com", "http://y.com/admin/panel")

    def test_url_without_path(self):
        rules = RobotsRules(disallowed_prefixes={"s.com": ["/x"]})
        assert rules.is_allowed("s.com", "http://s.com")


class TestSimulatedFetcher:
    def test_fetch_live_page(self, small_web):
        fetcher = SimulatedFetcher(small_web)
        url = small_web.seed_urls()[0]
        result = fetcher.fetch(url, at=1.0)
        assert result.ok
        assert result.status is FetchStatus.OK
        assert result.checksum
        assert result.content

    def test_fetch_unknown_url(self, small_web):
        fetcher = SimulatedFetcher(small_web)
        result = fetcher.fetch("http://nonexistent/", at=1.0)
        assert not result.ok
        assert result.status is FetchStatus.NOT_FOUND

    def test_fetch_dead_page(self, small_web):
        fetcher = SimulatedFetcher(small_web)
        dead = next(
            (p for p in small_web.pages() if p.deleted_at is not None
             and p.deleted_at < small_web.horizon_days - 1),
            None,
        )
        if dead is None:
            pytest.skip("no dead page in the small web")
        result = fetcher.fetch(dead.url, at=dead.deleted_at + 0.5)
        assert result.status is FetchStatus.NOT_FOUND

    def test_checksum_stable_without_change(self, small_web):
        fetcher = SimulatedFetcher(small_web)
        static = next(
            p for p in small_web.pages()
            if p.change_process.mean_rate == 0.0 and p.created_at == 0.0
            and p.lifespan is None
        )
        first = fetcher.fetch(static.url, at=1.0)
        second = fetcher.fetch(static.url, at=50.0)
        assert first.checksum == second.checksum

    def test_checksum_changes_when_page_changes(self, small_web):
        fetcher = SimulatedFetcher(small_web)
        changing = next(
            p for p in small_web.pages()
            if p.created_at == 0.0 and p.lifespan is None
            and len(p.change_process.change_times()) > 0
        )
        change_time = changing.change_process.change_times()[0]
        before = fetcher.fetch(changing.url, at=max(0.0, change_time - 1e-3))
        after = fetcher.fetch(changing.url, at=change_time + 1e-3)
        assert before.checksum != after.checksum

    def test_latency_charged(self, small_web):
        fetcher = SimulatedFetcher(small_web, latency_days=0.01)
        result = fetcher.fetch(small_web.seed_urls()[0], at=1.0)
        assert result.completed_at == pytest.approx(1.01)

    def test_politeness_applied(self, small_web):
        from repro.fetch.politeness import PolitenessPolicy

        policy = PolitenessPolicy(min_delay_seconds=3600.0)
        fetcher = SimulatedFetcher(small_web, politeness=policy, latency_days=0.0)
        url = small_web.seed_urls()[0]
        fetcher.fetch(url, at=1.0)
        second = fetcher.fetch(url, at=1.0)
        assert second.completed_at >= 1.0 + 3600.0 / 86400.0 - 1e-9

    def test_robots_exclusion(self, small_web):
        site_id = small_web.sites[0].site_id
        rules = RobotsRules(excluded_sites=[site_id])
        fetcher = SimulatedFetcher(small_web, robots=rules)
        url = small_web.site(site_id).root_url
        result = fetcher.fetch(url, at=1.0)
        assert result.status is FetchStatus.EXCLUDED

    def test_fetch_count_increments(self, small_web):
        fetcher = SimulatedFetcher(small_web)
        fetcher.fetch(small_web.seed_urls()[0], at=1.0)
        fetcher.fetch(small_web.seed_urls()[1], at=1.0)
        assert fetcher.fetch_count == 2

    def test_outlinks_forwarded(self, small_web):
        fetcher = SimulatedFetcher(small_web)
        url = small_web.seed_urls()[0]
        result = fetcher.fetch(url, at=1.0)
        assert tuple(result.outlinks) == tuple(small_web.page(url).outlinks)

    def test_invalid_latency(self, small_web):
        with pytest.raises(ValueError):
            SimulatedFetcher(small_web, latency_days=-1.0)
