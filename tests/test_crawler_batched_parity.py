"""Batched crawl engine vs the pinned per-URL reference engine.

The batched engine (tick-window slot batching, batched oracle fetches,
bulk reschedules) promises *bit-identical* behaviour to the per-URL
reference path: same counters, same freshness and quality series, same
stored collection. These tests pin that promise across every revisit
policy × estimator combination, for the periodic crawler's wave-batched
cycles, and for the collision-safe scheduling primitives the batched
engine leans on.
"""

from __future__ import annotations

import pytest

from repro.core.collurls import CollUrls
from repro.core.incremental_crawler import IncrementalCrawler, IncrementalCrawlerConfig
from repro.core.periodic_crawler import PeriodicCrawler, PeriodicCrawlerConfig
from repro.simweb.generator import WebGeneratorConfig, generate_web

WEB_CONFIG = WebGeneratorConfig(
    site_scale=0.04,
    pages_per_site=12,
    horizon_days=50.0,
    new_page_fraction=0.25,
    seed=11,
)


def _run_incremental(engine: str, policy: str, estimator: str):
    web = generate_web(WEB_CONFIG)
    crawler = IncrementalCrawler(
        web,
        IncrementalCrawlerConfig(
            collection_capacity=100,
            crawl_budget_per_day=400.0,
            revisit_policy=policy,
            estimator=estimator,
            engine=engine,
            ranking_interval_days=5.0,
            reallocation_interval_days=1.0,
            measurement_interval_days=0.5,
            track_quality=True,
        ),
    )
    result = crawler.run(30.0)
    return result, crawler


class TestIncrementalEngineParity:
    @pytest.mark.parametrize("policy", ["uniform", "proportional", "optimal"])
    @pytest.mark.parametrize("estimator", ["ep", "eb"])
    def test_counters_and_series_identical(self, policy, estimator):
        batched, crawler_b = _run_incremental("batched", policy, estimator)
        reference, crawler_r = _run_incremental("reference", policy, estimator)

        assert batched.pages_crawled == reference.pages_crawled
        assert batched.pages_failed == reference.pages_failed
        assert batched.changes_detected == reference.changes_detected
        assert batched.pages_replaced == reference.pages_replaced

        # Bit-identical series, not approximately equal.
        assert batched.freshness.times == reference.freshness.times
        assert batched.freshness.freshness == reference.freshness.freshness
        assert batched.quality == reference.quality
        assert batched.quality_times == reference.quality_times

        records_b = {r.url: r for r in crawler_b.collection.current_records()}
        records_r = {r.url: r for r in crawler_r.collection.current_records()}
        assert set(records_b) == set(records_r)
        for url, record in records_b.items():
            other = records_r[url]
            assert record.fetched_at == other.fetched_at
            assert record.checksum == other.checksum
            assert record.visit_count == other.visit_count
            assert record.change_count == other.change_count

    def test_rate_estimates_identical(self):
        _, crawler_b = _run_incremental("batched", "optimal", "ep")
        _, crawler_r = _run_incremental("reference", "optimal", "ep")
        assert (
            crawler_b.update_module.estimated_rates()
            == crawler_r.update_module.estimated_rates()
        )

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            IncrementalCrawlerConfig(engine="warp")


POLITE_MODES = {
    # (min_delay_seconds, night_window)
    "delay": (1800.0, False),
    "night": (0.0, True),
    "both": (1800.0, True),
}


def _run_incremental_polite(engine: str, policy: str, estimator: str, mode: str):
    delay, night = POLITE_MODES[mode]
    web = generate_web(WEB_CONFIG)
    crawler = IncrementalCrawler(
        web,
        IncrementalCrawlerConfig(
            collection_capacity=80,
            crawl_budget_per_day=300.0,
            revisit_policy=policy,
            estimator=estimator,
            engine=engine,
            ranking_interval_days=5.0,
            reallocation_interval_days=1.0,
            measurement_interval_days=0.5,
            track_quality=False,
            use_politeness=True,
            politeness_min_delay_seconds=delay,
            politeness_night_window=night,
        ),
    )
    result = crawler.run(15.0)
    return result, crawler


class TestPolitenessEngineParity:
    """Tentpole: politeness on the batched engine, bit-identical.

    The batched engine resolves per-site politeness chains in bulk
    (site-grouped segmented scans); every mode — minimum delay only,
    night window only, both — must reproduce the reference engine's
    counters, freshness series and every fetch timestamp exactly.
    """

    @pytest.mark.parametrize("mode", ["delay", "night", "both"])
    @pytest.mark.parametrize("policy", ["uniform", "proportional", "optimal"])
    @pytest.mark.parametrize("estimator", ["ep", "eb"])
    def test_polite_runs_identical(self, mode, policy, estimator):
        batched, crawler_b = _run_incremental_polite("batched", policy, estimator, mode)
        reference, crawler_r = _run_incremental_polite(
            "reference", policy, estimator, mode
        )

        assert batched.pages_crawled == reference.pages_crawled
        assert batched.pages_failed == reference.pages_failed
        assert batched.changes_detected == reference.changes_detected
        assert batched.pages_replaced == reference.pages_replaced
        assert batched.freshness.times == reference.freshness.times
        assert batched.freshness.freshness == reference.freshness.freshness

        records_b = {r.url: r for r in crawler_b.collection.current_records()}
        records_r = {r.url: r for r in crawler_r.collection.current_records()}
        assert set(records_b) == set(records_r)
        for url, record in records_b.items():
            other = records_r[url]
            # Politeness shifts the fetch instants themselves, so the
            # timestamps pin the resolved per-site delay chains.
            assert record.fetched_at == other.fetched_at
            assert record.checksum == other.checksum
            assert record.visit_count == other.visit_count
            assert record.change_count == other.change_count

    def test_polite_rate_estimates_identical(self):
        _, crawler_b = _run_incremental_polite("batched", "optimal", "ep", "both")
        _, crawler_r = _run_incremental_polite("reference", "optimal", "ep", "both")
        assert (
            crawler_b.update_module.estimated_rates()
            == crawler_r.update_module.estimated_rates()
        )

    def test_polite_crawl_uses_batched_path(self, monkeypatch):
        """Politeness no longer forces the reference engine: the batched
        engine's polite slot processor must actually run."""
        from repro.core.update_module import UpdateModule

        calls = {"polite": 0}
        original = UpdateModule._process_slots_polite

        def spy(self, slot_times, politeness):
            calls["polite"] += 1
            return original(self, slot_times, politeness)

        monkeypatch.setattr(UpdateModule, "_process_slots_polite", spy)
        result, _ = _run_incremental_polite("batched", "optimal", "ep", "both")
        assert result.pages_crawled > 0
        assert calls["polite"] > 0


class TestPeriodicEngineParity:
    def _run(self, engine: str):
        web = generate_web(WEB_CONFIG)
        crawler = PeriodicCrawler(
            web,
            PeriodicCrawlerConfig(
                collection_capacity=100,
                crawl_budget_per_day=1500.0,
                cycle_days=8.0,
                measurement_interval_days=0.5,
                track_quality=True,
                engine=engine,
            ),
        )
        return crawler.run(30.0), crawler

    def test_cycles_and_series_identical(self):
        batched, crawler_b = self._run("batched")
        reference, crawler_r = self._run("reference")
        assert batched.pages_crawled == reference.pages_crawled
        assert batched.cycles_completed == reference.cycles_completed
        assert batched.freshness.times == reference.freshness.times
        assert batched.freshness.freshness == reference.freshness.freshness
        assert batched.quality == reference.quality
        urls_b = sorted(crawler_b.collection.current_urls())
        urls_r = sorted(crawler_r.collection.current_urls())
        assert urls_b == urls_r


class TestCollisionSafeScheduling:
    """Satellite: bulk scheduling must never rely on epsilon nudges."""

    def test_equal_times_pop_in_schedule_order(self):
        queue = CollUrls()
        urls = [f"http://seed{i}/" for i in range(50)]
        queue.schedule_many(urls, [3.0] * len(urls))
        popped = [queue.pop()[0] for _ in range(len(urls))]
        assert popped == urls

    def test_schedule_front_is_lifo_without_time_nudges(self):
        queue = CollUrls()
        queue.schedule("http://a/", 2.0)
        queue.schedule_front("http://x/", now=5.0)
        queue.schedule_front("http://y/", now=5.0)
        # Later admissions pop first; the scheduled time is the head's
        # time itself, not an epsilon below it.
        assert queue.scheduled_time("http://y/") == 2.0
        assert [queue.pop()[0] for _ in range(3)] == [
            "http://y/",
            "http://x/",
            "http://a/",
        ]

    def test_front_entries_survive_dense_bulk_schedules(self):
        queue = CollUrls()
        # A thousand entries at exactly the same time plus front entries:
        # with epsilon-based front placement these collide; with sequence
        # tie-breaks the order stays exact.
        urls = [f"http://u{i}/" for i in range(1000)]
        queue.schedule_many(urls, [7.0] * 1000)
        queue.schedule_front("http://vip/", now=9.0)
        assert queue.pop()[0] == "http://vip/"
        assert queue.pop()[0] == "http://u0/"

    def test_pop_due_and_restore_round_trip(self):
        queue = CollUrls()
        urls = [f"http://u{i}/" for i in range(10)]
        queue.schedule_many(urls, [float(i) for i in range(10)])
        entries = queue.pop_due(max_n=6)
        assert [entry[2] for entry in entries] == urls[:6]
        queue.restore(entries[3:])
        # Restored entries resume their exact positions.
        assert queue.pop()[0] == urls[3]
        assert queue.pop()[0] == urls[4]

    def test_pop_due_until_bound(self):
        queue = CollUrls()
        queue.schedule_many(["http://a/", "http://b/", "http://c/"], [1.0, 2.0, 3.0])
        entries = queue.pop_due(until=2.0)
        assert [entry[2] for entry in entries] == ["http://a/", "http://b/"]
        assert len(queue) == 1

    def test_restore_rejects_rescheduled_url(self):
        queue = CollUrls()
        queue.schedule("http://a/", 1.0)
        entries = queue.pop_due(max_n=1)
        queue.schedule("http://a/", 9.0)
        with pytest.raises(ValueError, match="rescheduled"):
            queue.restore(entries)

    def test_bootstrap_seeds_share_start_time(self):
        """Seeds are scheduled at exactly the start time, in seed order."""
        web = generate_web(WEB_CONFIG)
        crawler = IncrementalCrawler(
            web,
            IncrementalCrawlerConfig(collection_capacity=50, track_quality=False),
        )
        crawler._bootstrap(2.5)
        seeds = web.seed_urls()
        times = [crawler.collurls.scheduled_time(url) for url in seeds]
        assert times == [2.5] * len(seeds)
        popped = [crawler.collurls.pop()[0] for _ in range(len(seeds))]
        assert popped == seeds
