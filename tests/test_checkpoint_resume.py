"""Kill-and-resume parity: checkpointed crawls restore bit-identically.

The contract under test is strict: a run that journals into a backend (or
checkpoints and resumes from any checkpoint) must produce *bit-identical*
results — freshness/quality series, counters, per-record fetch timestamps
and estimator state — to the same run executed uninterrupted with no
backend at all.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.api.registry import STORAGE_BACKENDS
from repro.api.runner import run
from repro.api.specs import CrawlerSpec, ExperimentSpec, WebSpec
from repro.core.incremental_crawler import IncrementalCrawler, IncrementalCrawlerConfig
from repro.storage.backends import MemoryBackend, SqliteBackend
from repro.storage.checkpoint import (
    CHECKPOINT_STATE_KEY,
    RESULT_STATE_KEY,
    CollectionJournal,
    CrawlCheckpointer,
)

DURATION = 30.0


def crawler_config(**overrides) -> IncrementalCrawlerConfig:
    base = dict(
        collection_capacity=60,
        crawl_budget_per_day=200.0,
        ranking_interval_days=5.0,
        measurement_interval_days=1.0,
        track_quality=True,
    )
    base.update(overrides)
    return IncrementalCrawlerConfig(**base)


def build_crawler(tiny_web, **overrides) -> IncrementalCrawler:
    return IncrementalCrawler(tiny_web, crawler_config(**overrides))


def result_fingerprint(crawler, result):
    """Everything the parity contract pins, bit-exact."""
    return {
        "times": list(result.freshness.times),
        "freshness": list(result.freshness.freshness),
        "quality": list(result.quality),
        "quality_times": list(result.quality_times),
        "counters": (
            result.pages_crawled,
            result.pages_failed,
            result.changes_detected,
            result.pages_replaced,
        ),
        "records": [
            (r.url, r.fetched_at, r.first_fetched_at, r.visit_count,
             r.change_count, r.checksum, r.importance)
            for r in crawler.collection.working_records()
        ],
        "estimates": list(crawler.update_module.estimated_rates().items()),
    }


# --------------------------------------------------------------------- #
# Journal parity
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("estimator", ["ep", "eb"])
@pytest.mark.parametrize("use_politeness", [False, True])
def test_journaled_run_is_bit_identical(tiny_web, estimator, use_politeness):
    plain = build_crawler(tiny_web, estimator=estimator, use_politeness=use_politeness)
    expected = result_fingerprint(plain, plain.run(DURATION))

    backend = MemoryBackend()
    journaled = build_crawler(
        tiny_web, estimator=estimator, use_politeness=use_politeness
    )
    outcome = journaled.run(DURATION, journal=CollectionJournal(backend))
    assert result_fingerprint(journaled, outcome) == expected

    # The backend mirrors the final working collection exactly.
    live = {r.url: r for r in journaled.collection.working_records()}
    stored = {r.url: r for r in backend.scan_records()}
    assert set(stored) == set(live)
    for url, record in live.items():
        assert stored[url].fetched_at == record.fetched_at
        assert stored[url].visit_count == record.visit_count
        assert stored[url].change_count == record.change_count
        assert stored[url].importance == record.importance
    assert backend.event_count() > 0


def test_journal_works_on_reference_engine(tiny_web):
    backend = MemoryBackend()
    crawler = build_crawler(tiny_web, engine="reference", track_quality=False)
    crawler.run(10.0, journal=CollectionJournal(backend))
    assert backend.record_count() == len(crawler.collection.working_records())
    assert backend.event_count() > 0


# --------------------------------------------------------------------- #
# Checkpoint/resume parity
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("use_politeness", [False, True])
def test_resume_from_every_checkpoint_is_bit_identical(tiny_web, use_politeness):
    plain = build_crawler(tiny_web, use_politeness=use_politeness)
    expected = result_fingerprint(plain, plain.run(DURATION))

    backend = MemoryBackend()
    checkpointer = CrawlCheckpointer(backend, every_days=7.0)
    states = []
    # Deep-copy through JSON: exactly what a persistent backend stores.
    checkpointer.on_save = lambda state: states.append(json.loads(json.dumps(state)))
    full = build_crawler(tiny_web, use_politeness=use_politeness)
    full_outcome = full.run(
        DURATION, journal=CollectionJournal(backend), checkpointer=checkpointer
    )
    assert checkpointer.saves >= 3
    assert result_fingerprint(full, full_outcome) == expected

    for state in states:
        resume_backend = MemoryBackend()
        resumed = build_crawler(tiny_web, use_politeness=use_politeness)
        outcome = resumed.run(
            DURATION,
            journal=CollectionJournal(resume_backend),
            resume_state=copy.deepcopy(state),
        )
        assert result_fingerprint(resumed, outcome) == expected


def test_resume_rejects_mismatched_run_shape(tiny_web):
    backend = MemoryBackend()
    checkpointer = CrawlCheckpointer(backend, every_days=7.0)
    crawler = build_crawler(tiny_web)
    crawler.run(DURATION, checkpointer=checkpointer)
    state = backend.load_state(CHECKPOINT_STATE_KEY)
    assert state is not None

    with pytest.raises(ValueError, match="duration_days"):
        build_crawler(tiny_web).run(DURATION + 5.0, resume_state=copy.deepcopy(state))
    with pytest.raises(ValueError, match="start_time"):
        build_crawler(tiny_web).run(
            DURATION, start_time=1.0, resume_state=copy.deepcopy(state)
        )
    bad_format = copy.deepcopy(state)
    bad_format["format"] = 999
    with pytest.raises(ValueError, match="format"):
        build_crawler(tiny_web).run(DURATION, resume_state=bad_format)
    with pytest.raises(ValueError, match="politeness"):
        build_crawler(tiny_web, use_politeness=True).run(
            DURATION, resume_state=copy.deepcopy(state)
        )


def test_checkpoint_requires_batched_engine(tiny_web):
    crawler = build_crawler(tiny_web, engine="reference")
    checkpointer = CrawlCheckpointer(MemoryBackend(), every_days=5.0)
    with pytest.raises(ValueError, match="batched"):
        crawler.run(DURATION, checkpointer=checkpointer)


def test_checkpointer_validates_spacing():
    with pytest.raises(ValueError, match="positive"):
        CrawlCheckpointer(MemoryBackend(), every_days=0.0)


def test_checkpointer_spec_hash_guard():
    backend = MemoryBackend()
    writer = CrawlCheckpointer(backend, every_days=1.0, spec_hash="a" * 64)
    writer.save({"format": 1}, at=0.0)
    reader = CrawlCheckpointer(backend, every_days=1.0, spec_hash="b" * 64)
    with pytest.raises(ValueError, match="different spec"):
        reader.load()
    same = CrawlCheckpointer(backend, every_days=1.0, spec_hash="a" * 64)
    assert same.load() is not None


def test_journal_truncates_event_tail_on_resume():
    backend = MemoryBackend()
    journal = CollectionJournal(backend)
    backend.append_events([("u", float(i), False, True) for i in range(5)])
    journal.events_logged = 5
    snapshot = journal.snapshot()
    # The "killed run" appends two more events after the checkpoint.
    backend.append_events([("u", 5.0, False, True), ("u", 6.0, False, True)])
    assert backend.event_count() == 7
    restored = CollectionJournal(backend)
    restored.restore_snapshot(snapshot)
    assert backend.event_count() == 5
    assert restored.events_logged == 5


# --------------------------------------------------------------------- #
# Runner-level persistence
# --------------------------------------------------------------------- #
WEB_SPEC = WebSpec(
    site_scale=0.04, pages_per_site=15, horizon_days=60.0,
    new_page_fraction=0.2, seed=7,
)
CRAWLER_SPEC = CrawlerSpec(
    collection_capacity=60, crawl_budget_per_day=200.0,
    duration_days=20.0, measurement_interval_days=1.0,
)


def test_runner_memory_backend_matches_plain_run():
    plain = run(ExperimentSpec(name="p", web=WEB_SPEC, crawler=CRAWLER_SPEC))
    stored = run(ExperimentSpec(
        name="p", web=WEB_SPEC,
        crawler=CRAWLER_SPEC.replace(storage="memory", checkpoint_every=5.0),
    ))
    assert stored.series == plain.series
    assert stored.summary == plain.summary


def test_runner_sqlite_store_and_result_short_circuit(tmp_path):
    path = str(tmp_path / "crawl.sqlite")
    spec = ExperimentSpec(
        name="sq", web=WEB_SPEC,
        crawler=CRAWLER_SPEC.replace(storage="sqlite", checkpoint_every=5.0),
    )
    first = run(spec, store=path)

    probe = SqliteBackend(path)
    try:
        assert probe.load_state(RESULT_STATE_KEY) is not None
        assert probe.load_state(CHECKPOINT_STATE_KEY) is not None
        assert probe.record_count() == first.summary["collection_size"]
        assert probe.event_count() > 0
    finally:
        probe.close()

    resumed = run(spec, store=path, resume=True)  # completed → short-circuit
    assert resumed.series == first.series
    assert resumed.summary == first.summary
    assert resumed.spec_hash == first.spec_hash


def test_runner_resume_continues_interrupted_run(tmp_path):
    """Simulate a kill: run only long enough to checkpoint, then resume."""
    path = str(tmp_path / "killed.sqlite")
    spec = ExperimentSpec(
        name="kill", web=WEB_SPEC,
        crawler=CRAWLER_SPEC.replace(storage="sqlite", checkpoint_every=5.0),
    )
    uninterrupted = run(spec)

    # "Kill" the run by checkpointing manually mid-run, as the engine would
    # have at the moment of death: persist a mid-run state, not a result.
    from repro.api.runner import build_web

    web = build_web(WEB_SPEC)
    backend = SqliteBackend(path)
    checkpointer = CrawlCheckpointer(
        backend, every_days=5.0, spec_hash=spec.spec_hash()
    )
    captured = {}

    def stop_after_second_save(state):
        if checkpointer.saves >= 2:
            captured["state"] = state
            raise KeyboardInterrupt  # aborts the run mid-flight, like SIGKILL

    checkpointer.on_save = stop_after_second_save
    partial = IncrementalCrawler(web, crawler_config(
        crawl_budget_per_day=CRAWLER_SPEC.crawl_budget_per_day,
        collection_capacity=CRAWLER_SPEC.collection_capacity,
    ))
    with pytest.raises(KeyboardInterrupt):
        partial.run(
            CRAWLER_SPEC.duration_days,
            journal=CollectionJournal(backend),
            checkpointer=checkpointer,
        )
    backend.close()

    resumed = run(spec, store=path, resume=True)
    assert resumed.series == uninterrupted.series
    assert resumed.summary == uninterrupted.summary


def test_runner_resume_without_checkpoint_errors(tmp_path):
    spec = ExperimentSpec(
        name="no-chk", web=WEB_SPEC,
        crawler=CRAWLER_SPEC.replace(storage="sqlite", checkpoint_every=5.0),
    )
    with pytest.raises(ValueError, match="no checkpoint"):
        run(spec, store=str(tmp_path / "empty.sqlite"), resume=True)


def test_runner_store_requires_storage_in_spec():
    spec = ExperimentSpec(name="x", web=WEB_SPEC, crawler=CRAWLER_SPEC)
    with pytest.raises(ValueError, match="storage"):
        run(spec, store="/tmp/nope.sqlite")
    with pytest.raises(ValueError, match="storage"):
        run(spec, resume=True)


def test_storage_backends_registry_reachable_from_api():
    assert {"memory", "sqlite", "columnar"} <= set(STORAGE_BACKENDS.names())
