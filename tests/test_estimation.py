"""Tests for the EP and EB change-frequency estimators."""

import numpy as np
import pytest

from repro.estimation.bayesian_estimator import (
    DEFAULT_CLASSES,
    BayesianClassEstimator,
    FrequencyClass,
)
from repro.estimation.change_history import ChangeHistory
from repro.estimation.poisson_estimator import (
    PoissonRateEstimator,
    corrected_rate_estimate,
    naive_rate_estimate,
)


def poisson_history(rate, visit_interval, n_visits, seed=0):
    """Simulate regular visits to a Poisson page and build its history."""
    rng = np.random.default_rng(seed)
    history = ChangeHistory(first_visit=0.0)
    time = 0.0
    for _ in range(n_visits):
        time += visit_interval
        changed = rng.random() < 1.0 - np.exp(-rate * visit_interval)
        history.record_visit(time, changed)
    return history


class TestChangeHistory:
    def test_records_in_order(self):
        history = ChangeHistory(first_visit=0.0)
        history.record_visit(1.0, True)
        history.record_visit(2.0, False)
        assert history.n_visits == 2
        assert history.n_changes == 1
        assert history.observation_time == pytest.approx(2.0)

    def test_out_of_order_rejected(self):
        history = ChangeHistory(first_visit=5.0)
        with pytest.raises(ValueError):
            history.record_visit(1.0, True)

    def test_intervals(self):
        history = ChangeHistory(first_visit=0.0)
        history.record_visit(2.0, True)
        history.record_visit(5.0, False)
        assert history.intervals() == [2.0, 3.0]
        assert history.mean_interval() == pytest.approx(2.5)

    def test_windowing_drops_old_observations(self):
        history = ChangeHistory(first_visit=0.0, window_days=10.0)
        for day in range(1, 31):
            history.record_visit(float(day), False)
        assert all(o.time >= 20.0 for o in history.observations)

    def test_average_change_interval(self):
        history = ChangeHistory(first_visit=0.0)
        for day in range(1, 51):
            history.record_visit(float(day), day % 10 == 0)
        assert history.average_change_interval() == pytest.approx(10.0)

    def test_average_change_interval_none_without_changes(self):
        history = ChangeHistory(first_visit=0.0)
        history.record_visit(1.0, False)
        assert history.average_change_interval() is None

    def test_detected_change_intervals(self):
        history = ChangeHistory(first_visit=0.0)
        history.record_visit(1.0, False)
        history.record_visit(2.0, True)   # change after 2 days
        history.record_visit(3.0, False)
        history.record_visit(5.0, True)   # change after 3 more days
        assert history.detected_change_intervals() == [2.0, 3.0]

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ChangeHistory(first_visit=-1.0)
        with pytest.raises(ValueError):
            ChangeHistory(first_visit=0.0, window_days=0.0)


class TestNaiveEstimator:
    def test_basic(self):
        assert naive_rate_estimate(5, 50.0) == pytest.approx(0.1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            naive_rate_estimate(1, 0.0)
        with pytest.raises(ValueError):
            naive_rate_estimate(-1, 10.0)

    def test_underestimates_fast_pages(self):
        """Figure 1(a): at most one change per visit can be detected."""
        true_rate = 3.0  # three changes per day
        history = poisson_history(true_rate, visit_interval=1.0, n_visits=500)
        naive = naive_rate_estimate(history.n_changes, history.observation_time)
        assert naive < true_rate * 0.5


class TestCorrectedEstimator:
    def test_recovers_moderate_rate(self):
        true_rate = 0.2
        history = poisson_history(true_rate, visit_interval=1.0, n_visits=4000)
        corrected = corrected_rate_estimate(
            history.n_visits, history.n_changes, 1.0
        )
        assert corrected == pytest.approx(true_rate, rel=0.15)

    def test_handles_every_visit_changed(self):
        value = corrected_rate_estimate(10, 10, 1.0)
        assert np.isfinite(value)
        assert value > 2.0

    def test_zero_changes_gives_zero(self):
        assert corrected_rate_estimate(10, 0, 1.0) == 0.0

    def test_less_biased_than_naive_for_fast_pages(self):
        true_rate = 1.5
        history = poisson_history(true_rate, visit_interval=1.0, n_visits=2000, seed=3)
        naive = naive_rate_estimate(history.n_changes, history.observation_time)
        corrected = corrected_rate_estimate(history.n_visits, history.n_changes, 1.0)
        assert abs(corrected - true_rate) < abs(naive - true_rate)

    def test_invalid(self):
        with pytest.raises(ValueError):
            corrected_rate_estimate(0, 0, 1.0)
        with pytest.raises(ValueError):
            corrected_rate_estimate(5, 6, 1.0)
        with pytest.raises(ValueError):
            corrected_rate_estimate(5, 2, 0.0)


class TestPoissonRateEstimator:
    def test_returns_none_without_observations(self):
        estimator = PoissonRateEstimator()
        assert estimator.estimate(ChangeHistory(first_visit=0.0)) is None

    def test_confidence_interval_contains_truth(self):
        true_rate = 0.1
        estimator = PoissonRateEstimator(confidence=0.99)
        history = poisson_history(true_rate, visit_interval=2.0, n_visits=1000, seed=1)
        estimate = estimator.estimate(history)
        assert estimate.lower <= true_rate <= estimate.upper

    def test_interval_narrower_with_more_data(self):
        estimator = PoissonRateEstimator()
        short = estimator.estimate(poisson_history(0.1, 1.0, 30, seed=2))
        long = estimator.estimate(poisson_history(0.1, 1.0, 3000, seed=2))
        assert (long.upper - long.lower) < (short.upper - short.lower)

    def test_naive_mode(self):
        estimator = PoissonRateEstimator(use_bias_correction=False)
        estimate = estimator.estimate(poisson_history(0.05, 1.0, 500, seed=4))
        assert estimate.method == "naive"
        assert estimate.rate == pytest.approx(0.05, rel=0.5)

    def test_mean_change_interval(self):
        estimator = PoissonRateEstimator()
        estimate = estimator.estimate(poisson_history(0.1, 1.0, 1000, seed=5))
        assert estimate.mean_change_interval == pytest.approx(10.0, rel=0.3)

    def test_invalid_confidence(self):
        with pytest.raises(ValueError):
            PoissonRateEstimator(confidence=1.5)


class TestBayesianClassEstimator:
    def test_uniform_prior_by_default(self):
        estimator = BayesianClassEstimator()
        posterior = estimator.posterior()
        assert all(
            p == pytest.approx(1.0 / len(DEFAULT_CLASSES)) for p in posterior.values()
        )

    def test_no_change_over_a_month_favours_slow_classes(self):
        """The paper's example: p1 did not change for a month, so P{CM} rises."""
        estimator = BayesianClassEstimator(
            classes=(FrequencyClass("weekly", 7.0), FrequencyClass("monthly", 30.0))
        )
        before = estimator.probability_of("monthly")
        estimator.observe(interval_days=30.0, changed=False)
        after = estimator.probability_of("monthly")
        assert after > before
        assert estimator.most_likely_class().name == "monthly"

    def test_frequent_changes_favour_fast_classes(self):
        estimator = BayesianClassEstimator()
        for _ in range(10):
            estimator.observe(interval_days=1.0, changed=True)
        assert estimator.most_likely_class().name == "daily"

    def test_posterior_sums_to_one_after_updates(self, rng):
        estimator = BayesianClassEstimator()
        for _ in range(50):
            estimator.observe(float(rng.uniform(0.5, 20.0)), bool(rng.random() < 0.5))
        assert sum(estimator.posterior().values()) == pytest.approx(1.0)

    def test_identifies_weekly_page(self, rng):
        estimator = BayesianClassEstimator()
        true_rate = 1.0 / 7.0
        for _ in range(100):
            interval = 3.0
            changed = rng.random() < 1.0 - np.exp(-true_rate * interval)
            estimator.observe(interval, changed)
        assert estimator.most_likely_class().name == "weekly"
        assert estimator.expected_interval() == pytest.approx(7.0, rel=0.8)

    def test_observe_history(self):
        history = ChangeHistory(first_visit=0.0)
        for day in range(1, 40):
            history.record_visit(float(day), False)
        estimator = BayesianClassEstimator()
        estimator.observe_history(history)
        assert estimator.most_likely_class().name in ("quarterly", "static")

    def test_expected_rate_between_class_rates(self):
        estimator = BayesianClassEstimator()
        rates = [c.rate for c in estimator.classes]
        assert min(rates) <= estimator.expected_rate() <= max(rates)

    def test_invalid_priors(self):
        with pytest.raises(ValueError):
            BayesianClassEstimator(prior=[0.5, 0.5])
        with pytest.raises(ValueError):
            BayesianClassEstimator(
                classes=(FrequencyClass("a", 1.0),), prior=[2.0]
            )
        with pytest.raises(ValueError):
            BayesianClassEstimator(classes=())

    def test_unknown_class_lookup(self):
        estimator = BayesianClassEstimator()
        with pytest.raises(KeyError):
            estimator.probability_of("bogus")

    def test_negative_interval_rejected(self):
        estimator = BayesianClassEstimator()
        with pytest.raises(ValueError):
            estimator.observe(-1.0, True)

    def test_zero_interval_change_keeps_posterior_valid(self):
        estimator = BayesianClassEstimator()
        estimator.observe(0.0, True)
        assert sum(estimator.posterior().values()) == pytest.approx(1.0)
