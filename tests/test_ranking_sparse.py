"""Sparse incremental link-graph ranking: properties and parity.

The sparse path makes two promises the dense implementations never had to:

* **Graph-state equivalence** — however a :class:`LinkGraph` reached its
  current shape (incremental deltas, removals, re-statements, compaction,
  bulk loads, snapshot round-trips), ranking over it must agree with a
  graph rebuilt from scratch from the final adjacency: exactly on node
  sets, to tolerance on scores.
* **Decision parity** — refinement decisions driven by the sparse
  incremental path must be identical to the pinned dense reference path,
  all the way up through a full crawler run.

Hypothesis sweeps random graphs and delta sequences for the first promise;
seeded end-to-end runs pin the second.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incremental_crawler import IncrementalCrawler, IncrementalCrawlerConfig
from repro.core.ranking_module import RankingModule
from repro.ranking.hits import hits_reference
from repro.ranking.pagerank import pagerank_reference
from repro.ranking.sparse import (
    LinkGraph,
    hits_dict,
    hits_scores,
    pagerank_dict,
    pagerank_scores,
)
from repro.simweb.generator import WebGeneratorConfig, generate_web

# ---------------------------------------------------------------------- #
# Strategies
# ---------------------------------------------------------------------- #
# Small URL universes force collisions: self-links, duplicate links,
# ghost targets (never stated as sources), re-statements of the same page.
urls_strategy = st.integers(min_value=1, max_value=12).map(
    lambda n: [f"http://u{i}/" for i in range(n)]
)


@st.composite
def adjacency_strategy(draw):
    """A random dense adjacency: url -> target list (duplicates allowed)."""
    urls = draw(urls_strategy)
    n_sources = draw(st.integers(min_value=0, max_value=len(urls)))
    graph = {}
    for url in urls[:n_sources]:
        k = draw(st.integers(min_value=0, max_value=6))
        graph[url] = [
            urls[draw(st.integers(min_value=0, max_value=len(urls) - 1))]
            for _ in range(k)
        ]
    return graph


@st.composite
def delta_sequence_strategy(draw):
    """A random edit script: set-outlinks and remove-page operations."""
    urls = draw(urls_strategy)
    n_ops = draw(st.integers(min_value=1, max_value=25))
    ops = []
    for _ in range(n_ops):
        url = urls[draw(st.integers(min_value=0, max_value=len(urls) - 1))]
        if draw(st.booleans()):
            k = draw(st.integers(min_value=0, max_value=5))
            targets = [
                urls[draw(st.integers(min_value=0, max_value=len(urls) - 1))]
                for _ in range(k)
            ]
            ops.append(("set", url, targets))
        else:
            ops.append(("remove", url, None))
    return ops


def _pagerank_by_url(graph: LinkGraph) -> dict:
    ids, scores = pagerank_scores(graph)
    return {graph.url_of(int(i)): s for i, s in zip(ids, scores)}


def _hits_by_url(graph: LinkGraph) -> tuple:
    ids, hubs, authorities = hits_scores(graph)
    urls = [graph.url_of(int(i)) for i in ids]
    return dict(zip(urls, hubs)), dict(zip(urls, authorities))


# ---------------------------------------------------------------------- #
# LinkGraph properties
# ---------------------------------------------------------------------- #
class TestLinkGraphProperties:
    @given(urls=urls_strategy)
    @settings(max_examples=50, deadline=None)
    def test_interning_is_stable(self, urls):
        graph = LinkGraph()
        first = [graph.intern(url) for url in urls]
        # Re-interning (scalar or bulk) never moves a URL to a new id.
        assert [graph.intern(url) for url in urls] == first
        assert list(graph.intern_many(urls)) == first
        assert [graph.url_of(i) for i in first] == urls
        assert graph.node_count == len(urls)

    @given(ops=delta_sequence_strategy())
    @settings(max_examples=120, deadline=None)
    def test_delta_apply_equals_rebuild(self, ops):
        """Any edit script ends at the same ranking as a from-scratch build."""
        incremental = LinkGraph()
        final = {}
        for op, url, targets in ops:
            if op == "set":
                incremental.set_outlinks(url, targets)
                final[url] = list(targets)
            else:
                incremental.remove_page(url)
                final.pop(url, None)
        rebuilt = LinkGraph.from_graph(final)

        assert set(incremental.active_urls()) == set(rebuilt.active_urls())
        inc_pr = _pagerank_by_url(incremental)
        reb_pr = _pagerank_by_url(rebuilt)
        assert set(inc_pr) == set(reb_pr)
        for url in inc_pr:
            assert inc_pr[url] == pytest.approx(reb_pr[url], abs=1e-9)
        inc_hits = _hits_by_url(incremental)
        reb_hits = _hits_by_url(rebuilt)
        for inc_side, reb_side in zip(inc_hits, reb_hits):
            assert set(inc_side) == set(reb_side)
            for url in inc_side:
                assert inc_side[url] == pytest.approx(reb_side[url], abs=1e-8)

    @given(graph=adjacency_strategy())
    @settings(max_examples=120, deadline=None)
    def test_scores_match_dense_reference(self, graph):
        """Sparse kernels agree with the pinned dense implementations."""
        sparse_pr = pagerank_dict(graph)
        dense_pr = pagerank_reference(graph)
        assert set(sparse_pr) == set(dense_pr)
        for url in dense_pr:
            assert sparse_pr[url] == pytest.approx(dense_pr[url], abs=1e-9)

        sparse_hubs, sparse_auth = hits_dict(graph)
        dense_hubs, dense_auth = hits_reference(graph)
        assert set(sparse_hubs) == set(dense_hubs)
        assert set(sparse_auth) == set(dense_auth)
        for url in dense_hubs:
            assert sparse_hubs[url] == pytest.approx(dense_hubs[url], abs=1e-7)
            assert sparse_auth[url] == pytest.approx(dense_auth[url], abs=1e-7)

    @given(graph=adjacency_strategy())
    @settings(max_examples=60, deadline=None)
    def test_snapshot_roundtrip_is_bit_identical(self, graph):
        original = LinkGraph.from_graph(graph)
        restored = LinkGraph()
        restored.restore_snapshot(original.snapshot())
        ids_a, scores_a = pagerank_scores(original)
        ids_b, scores_b = pagerank_scores(restored)
        assert np.array_equal(ids_a, ids_b)
        assert np.array_equal(scores_a, scores_b)
        assert original.active_urls() == restored.active_urls()

    @given(graph=adjacency_strategy())
    @settings(max_examples=60, deadline=None)
    def test_warm_start_reaches_the_same_fixed_point(self, graph):
        sparse = LinkGraph.from_graph(graph)
        ids, cold = pagerank_scores(sparse)
        if len(ids) == 0:
            return
        # Warm-starting from the previous fixed point, from a perturbed
        # vector, or from a vector with NaN (never-scored) holes must all
        # land on the same answer as the cold run.
        for x0 in (
            cold,
            cold * 1.5 + 1e-3,
            np.where(np.arange(len(cold)) % 2 == 0, np.nan, cold),
        ):
            _, warm = pagerank_scores(sparse, x0=x0.copy())
            assert np.max(np.abs(warm - cold)) < 1e-8

    def test_dangling_disconnected_and_self_links(self):
        graph = LinkGraph()
        graph.set_outlinks("http://dangling/", [])
        graph.set_outlinks("http://selfish/", ["http://selfish/", "http://selfish/"])
        graph.set_outlinks("http://island/", ["http://ghost/"])
        scores = _pagerank_by_url(graph)
        # Ghost target is active (it is linked) even though never a source.
        assert set(scores) == {
            "http://dangling/",
            "http://selfish/",
            "http://island/",
            "http://ghost/",
        }
        assert sum(scores.values()) == pytest.approx(1.0)
        dense = pagerank_reference(
            {
                "http://dangling/": [],
                "http://selfish/": ["http://selfish/", "http://selfish/"],
                "http://island/": ["http://ghost/"],
            }
        )
        for url, score in dense.items():
            assert scores[url] == pytest.approx(score, abs=1e-10)

    def test_duplicate_links_carry_extra_weight(self):
        # Two parallel edges a->b must weigh twice one edge — the dense
        # reference gives duplicate targets multiple shares.
        duplicated = pagerank_dict({"a": ["b", "b", "c"]})
        single = pagerank_dict({"a": ["b", "c"]})
        assert duplicated["b"] > single["b"]

    def test_removal_deactivates_unreferenced_targets(self):
        graph = LinkGraph()
        graph.set_outlinks("a", ["b", "c"])
        graph.set_outlinks("b", ["c"])
        graph.remove_page("a")
        # b stays (it is a source); c stays (b links it); b's in-link is gone.
        assert set(graph.active_urls()) == {"b", "c"}
        graph.remove_page("b")
        assert graph.active_urls() == []
        # Re-adding a removed page revives it cleanly.
        graph.set_outlinks("a", ["b"])
        assert set(graph.active_urls()) == {"a", "b"}

    def test_compaction_preserves_scores_bitwise(self):
        urls = [f"http://p{i}/" for i in range(30)]
        stable = LinkGraph()
        churned = LinkGraph()
        # Identical interning order in both graphs: with the same ids, the
        # only difference left is how often stale edges were compacted.
        stable.intern_many(urls)
        churned.intern_many(urls)
        rng = np.random.default_rng(17)
        final = {}
        for url in urls:
            targets = [urls[j] for j in rng.integers(0, len(urls), size=4)]
            final[url] = targets
        # The churned graph re-states every page many times over, forcing
        # stale-edge garbage collection; the stable graph states each once.
        for round_index in range(40):
            for url in urls:
                targets = [urls[j] for j in rng.integers(0, len(urls), size=4)]
                churned.set_outlinks(url, targets)
        for url, targets in final.items():
            stable.set_outlinks(url, targets)
            churned.set_outlinks(url, targets)
        ids_a, scores_a = pagerank_scores(stable)
        ids_b, scores_b = pagerank_scores(churned)
        assert np.array_equal(ids_a, ids_b)
        assert np.array_equal(scores_a, scores_b)

    def test_from_arrays_matches_per_page_statement(self):
        rng = np.random.default_rng(23)
        n = 40
        urls = [f"http://p{i}/" for i in range(n)]
        src = rng.integers(0, n, size=150)
        dst = rng.integers(0, n, size=150)
        bulk = LinkGraph.from_arrays(
            urls, src, dst, sources=np.arange(n, dtype=np.int64)
        )
        stated = LinkGraph()
        per_node = {i: [] for i in range(n)}
        for s, d in zip(src.tolist(), dst.tolist()):
            per_node[s].append(urls[d])
        for i in range(n):
            stated.set_outlinks(urls[i], per_node[i])
        bulk_pr = _pagerank_by_url(bulk)
        stated_pr = _pagerank_by_url(stated)
        assert set(bulk_pr) == set(stated_pr)
        for url in bulk_pr:
            assert bulk_pr[url] == pytest.approx(stated_pr[url], abs=1e-10)

    def test_from_arrays_rejects_malformed_input(self):
        with pytest.raises(ValueError):
            LinkGraph.from_arrays(["a"], np.array([0]), np.array([0, 1]))
        with pytest.raises(ValueError):
            LinkGraph.from_arrays(["a"], np.array([0]), np.array([5]))

    def test_empty_graph(self):
        graph = LinkGraph()
        ids, scores = pagerank_scores(graph)
        assert len(ids) == 0 and len(scores) == 0
        ids, hubs, authorities = hits_scores(graph)
        assert len(ids) == 0


# ---------------------------------------------------------------------- #
# Crawler-level decision parity
# ---------------------------------------------------------------------- #
WEB_CONFIG = WebGeneratorConfig(
    site_scale=0.04,
    pages_per_site=12,
    horizon_days=50.0,
    new_page_fraction=0.25,
    seed=31,
)


def _run_crawl(metric: str):
    """One incremental crawl with frequent ranking scans, decisions spied."""
    decisions = []
    original_refine = RankingModule.refine

    def recording_refine(self, at):
        result = original_refine(self, at)
        decisions.append((result.replacements, result.admitted))
        return result

    RankingModule.refine = recording_refine
    try:
        web = generate_web(WEB_CONFIG)
        crawler = IncrementalCrawler(
            web,
            IncrementalCrawlerConfig(
                collection_capacity=80,
                crawl_budget_per_day=300.0,
                revisit_policy="optimal",
                estimator="ep",
                engine="batched",
                importance_metric=metric,
                ranking_interval_days=3.0,
                measurement_interval_days=1.0,
                track_quality=False,
            ),
        )
        result = crawler.run(25.0)
    finally:
        RankingModule.refine = original_refine
    collected = sorted(r.url for r in crawler.collection.current_records())
    return result, decisions, collected


class TestRefinementDecisionParity:
    @pytest.mark.parametrize("metric", ["pagerank", "hits"])
    def test_sparse_and_reference_paths_decide_identically(
        self, metric, monkeypatch
    ):
        """Refinement decisions are bit-identical across importance paths.

        The sparse incremental scores differ from the dense reference at
        the ulp level, but every admission and every replacement — and
        with them the final collection — must be exactly the same.
        """
        sparse_result, sparse_decisions, sparse_collected = _run_crawl(metric)
        monkeypatch.setattr(
            RankingModule,
            "_compute_importance",
            RankingModule._compute_importance_reference,
        )
        ref_result, ref_decisions, ref_collected = _run_crawl(metric)

        assert len(sparse_decisions) == len(ref_decisions) > 0
        assert sparse_decisions == ref_decisions
        assert sparse_result.pages_replaced == ref_result.pages_replaced
        assert sparse_collected == ref_collected
