"""Tests for the monitoring experiment machinery (Sections 2-3 pipeline)."""

import pytest

from repro.experiment.monitor import ActiveMonitor, ObservationLog, PageObservationHistory
from repro.experiment.site_selection import (
    PAPER_TABLE1_SITE_COUNTS,
    domain_share,
    select_sites,
)
from repro.simweb.generator import WebGeneratorConfig, generate_web


class TestSiteSelection:
    def test_selects_requested_number_of_candidates(self, small_web):
        selection = select_sites(small_web, n_candidates=10, consent_rate=1.0)
        assert len(selection.candidate_site_ids) == 10
        assert selection.n_selected == 10

    def test_consent_rate_shrinks_selection(self, small_web):
        selection = select_sites(small_web, n_candidates=small_web.n_sites,
                                 consent_rate=0.5, seed=3)
        assert 0 < selection.n_selected < small_web.n_sites

    def test_candidates_are_most_popular(self, small_web):
        selection = select_sites(small_web, n_candidates=5, consent_rate=1.0)
        popularity = selection.popularity
        chosen = set(selection.candidate_site_ids)
        not_chosen = [s for s in popularity if s not in chosen]
        if not_chosen:
            min_chosen = min(popularity[s] for s in chosen)
            max_not_chosen = max(popularity[s] for s in not_chosen)
            assert min_chosen >= max_not_chosen - 1e-12

    def test_domain_counts_sum_to_selection(self, small_web):
        selection = select_sites(small_web, consent_rate=0.8, seed=1)
        assert sum(selection.domain_counts.values()) == selection.n_selected

    def test_com_dominates_selection(self, small_web):
        """Table 1: roughly half of the monitored sites are commercial."""
        selection = select_sites(small_web, consent_rate=1.0)
        shares = domain_share(selection.domain_counts)
        assert shares.get("com", 0.0) == max(shares.values())

    def test_paper_table1_reference_values(self):
        assert PAPER_TABLE1_SITE_COUNTS["com"] == 132
        assert sum(PAPER_TABLE1_SITE_COUNTS.values()) == 270

    def test_invalid_arguments(self, small_web):
        with pytest.raises(ValueError):
            select_sites(small_web, n_candidates=0)
        with pytest.raises(ValueError):
            select_sites(small_web, consent_rate=0.0)

    def test_empty_share(self):
        assert domain_share({}) == {}


class TestActiveMonitor:
    def test_observation_log_structure(self, observation_log, small_web):
        assert observation_log.start_day == 0
        assert observation_log.duration_days == int(small_web.horizon_days)
        assert observation_log.n_pages > 0

    def test_every_observed_page_belongs_to_a_monitored_site(
        self, observation_log, small_web
    ):
        monitored = set(observation_log.monitored_site_ids)
        for history in observation_log.pages.values():
            assert history.site_id in monitored

    def test_first_seen_before_last_seen(self, observation_log):
        for history in observation_log.pages.values():
            assert history.first_seen_day <= history.last_seen_day

    def test_days_observed_within_span(self, observation_log):
        for history in observation_log.pages.values():
            assert 1 <= history.days_observed <= history.observed_span_days

    def test_change_days_within_observation_window(self, observation_log):
        for history in observation_log.pages.values():
            for day in history.change_days:
                assert history.first_seen_day < day <= history.last_seen_day

    def test_static_pages_show_no_changes(self, observation_log, small_web):
        static_urls = {
            p.url for p in small_web.pages() if p.change_process.mean_rate == 0.0
        }
        for url in static_urls:
            history = observation_log.pages.get(url)
            if history is not None:
                assert history.n_changes == 0

    def test_daily_changing_pages_change_often(self, observation_log, small_web):
        fast_urls = [
            p.url for p in small_web.pages()
            if p.change_process.mean_rate >= 1.0 and p.lifespan is None
            and p.created_at == 0.0
        ]
        histories = [
            observation_log.pages[url] for url in fast_urls if url in observation_log.pages
        ]
        assert histories, "expected at least one fast page to be observed"
        mean_changes = sum(h.n_changes for h in histories) / len(histories)
        assert mean_changes > observation_log.duration_days * 0.3

    def test_pages_in_domain_filter(self, observation_log):
        com_pages = observation_log.pages_in_domain("com")
        assert com_pages
        assert all(h.domain == "com" for h in com_pages)

    def test_pages_present_at_start(self, observation_log):
        initial = observation_log.pages_present_at_start()
        assert initial
        assert all(h.first_seen_day == observation_log.start_day for h in initial)

    def test_late_created_pages_detected(self, observation_log, small_web):
        """Pages created during the experiment enter the window (Section 2.1)."""
        late_urls = {
            p.url for p in small_web.pages() if p.created_at > 2.0
        }
        late_observed = [
            h for url, h in observation_log.pages.items()
            if url in late_urls and h.first_seen_day > observation_log.start_day
        ]
        assert late_observed

    def test_monitoring_subset_of_sites(self, small_web):
        site_ids = [small_web.sites[0].site_id]
        monitor = ActiveMonitor(small_web, site_ids=site_ids)
        log = monitor.run(start_day=0, end_day=5)
        assert set(h.site_id for h in log.pages.values()) == set(site_ids)

    def test_invalid_day_range(self, small_web):
        monitor = ActiveMonitor(small_web)
        with pytest.raises(ValueError):
            monitor.run(start_day=10, end_day=5)

    def test_invalid_visit_hour(self, small_web):
        with pytest.raises(ValueError):
            ActiveMonitor(small_web, visit_hour_fraction=1.5)


class TestObservationHistoryHelpers:
    def test_average_change_interval(self):
        history = PageObservationHistory(
            url="u", site_id="s", domain="com",
            first_seen_day=0, last_seen_day=50, days_observed=51,
            change_days=[10, 20, 30, 40, 50],
        )
        assert history.average_change_interval() == pytest.approx(10.0)

    def test_average_change_interval_none(self):
        history = PageObservationHistory(
            url="u", site_id="s", domain="com",
            first_seen_day=0, last_seen_day=10, days_observed=11,
        )
        assert history.average_change_interval() is None

    def test_change_intervals(self):
        history = PageObservationHistory(
            url="u", site_id="s", domain="com",
            first_seen_day=0, last_seen_day=30, days_observed=31,
            change_days=[5, 15, 30],
        )
        assert history.change_intervals() == [10.0, 15.0]
